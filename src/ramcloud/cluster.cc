#include "src/ramcloud/cluster.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ofc::rc {

Cluster::Cluster(sim::EventLoop* loop, int num_nodes, ClusterOptions options, Rng rng)
    : loop_(loop), options_(options), rng_(rng) {
  assert(num_nodes > 0);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  for (NodeStats& node : nodes_) {
    node.memory_capacity = options_.default_capacity;
  }
  logs_.assign(static_cast<std::size_t>(num_nodes), SegmentedLog(options_.log));

  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  flight_ = options_.flight;
  m_.reads = metrics_->GetCounter("ofc.ramcloud.reads");
  m_.read_hits_local = metrics_->GetCounter("ofc.ramcloud.read_hits_local");
  m_.read_hits_remote = metrics_->GetCounter("ofc.ramcloud.read_hits_remote");
  m_.read_misses = metrics_->GetCounter("ofc.ramcloud.read_misses");
  m_.writes = metrics_->GetCounter("ofc.ramcloud.writes");
  m_.write_rejects = metrics_->GetCounter("ofc.ramcloud.write_rejects");
  m_.version_conflicts = metrics_->GetCounter("ofc.ramcloud.version_conflicts");
  m_.transactions_committed = metrics_->GetCounter("ofc.ramcloud.transactions_committed");
  m_.migrations = metrics_->GetCounter("ofc.ramcloud.migrations");
  m_.evictions = metrics_->GetCounter("ofc.ramcloud.evictions");
  m_.node_crashes = metrics_->GetCounter("ofc.ramcloud.node_crashes");
  m_.node_restarts = metrics_->GetCounter("ofc.ramcloud.node_restarts");
  m_.objects_recovered = metrics_->GetCounter("ofc.ramcloud.objects_recovered");
  m_.objects_lost = metrics_->GetCounter("ofc.ramcloud.objects_lost");
  m_.checksum_failures = metrics_->GetCounter("ofc.integrity.checksum_failures");
  m_.integrity_repairs = metrics_->GetCounter("ofc.integrity.repairs");
  m_.read_data_loss = metrics_->GetCounter("ofc.integrity.read_data_loss");
  m_.nodes_quarantined = metrics_->GetCounter("ofc.ramcloud.nodes_quarantined");
  m_.recovery_ms = metrics_->GetSeries("ofc.ramcloud.recovery_ms");
}

ClusterStats Cluster::stats() const {
  ClusterStats stats;
  stats.reads = m_.reads->value();
  stats.read_hits_local = m_.read_hits_local->value();
  stats.read_hits_remote = m_.read_hits_remote->value();
  stats.read_misses = m_.read_misses->value();
  stats.writes = m_.writes->value();
  stats.write_rejects = m_.write_rejects->value();
  stats.version_conflicts = m_.version_conflicts->value();
  stats.transactions_committed = m_.transactions_committed->value();
  stats.migrations = m_.migrations->value();
  stats.evictions = m_.evictions->value();
  stats.node_crashes = m_.node_crashes->value();
  stats.node_restarts = m_.node_restarts->value();
  stats.objects_recovered = m_.objects_recovered->value();
  stats.objects_lost = m_.objects_lost->value();
  stats.checksum_failures = m_.checksum_failures->value();
  stats.integrity_repairs = m_.integrity_repairs->value();
  stats.read_data_loss = m_.read_data_loss->value();
  stats.nodes_quarantined = m_.nodes_quarantined->value();
  return stats;
}

void Cluster::ResetStats() {
  m_.reads->Reset();
  m_.read_hits_local->Reset();
  m_.read_hits_remote->Reset();
  m_.read_misses->Reset();
  m_.writes->Reset();
  m_.write_rejects->Reset();
  m_.version_conflicts->Reset();
  m_.transactions_committed->Reset();
  m_.migrations->Reset();
  m_.evictions->Reset();
  m_.node_crashes->Reset();
  m_.node_restarts->Reset();
  m_.objects_recovered->Reset();
  m_.objects_lost->Reset();
  m_.checksum_failures->Reset();
  m_.integrity_repairs->Reset();
  m_.read_data_loss->Reset();
  m_.nodes_quarantined->Reset();
  m_.recovery_ms->Reset();
}

void Cluster::NoteCorruption(const std::string& key, int node, const char* where) {
  ++*m_.checksum_failures;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kCorruptionDetected, 0, 0, node,
                    key, where);
  }
}

void Cluster::NoteRepair(const std::string& key, int node, const char* source) {
  ++*m_.integrity_repairs;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kCorruptionRepaired, 0, 0, node,
                    key, source);
  }
}

int Cluster::CheckNode(int node) const {
  SIM_ASSERT(node >= 0 && node < num_nodes()) << "; node=" << node;
  return node;
}

Bytes Cluster::FreeMemory(int node) const {
  const NodeStats& stats = nodes_[CheckNode(node)];
  if (!stats.alive) {
    return 0;
  }
  return std::max<Bytes>(0, stats.memory_capacity - logs_[node].footprint());
}

Result<std::pair<int, SegmentedLog::EntryId>> Cluster::PlaceInLog(
    int prefer, Bytes size, SimDuration* cleaning_cost) {
  // Candidate order: preferred node first, then by free memory descending.
  std::vector<int> candidates;
  if (prefer >= 0 && prefer < num_nodes() && nodes_[prefer].alive) {
    candidates.push_back(prefer);
  }
  std::vector<int> rest;
  for (int n = 0; n < num_nodes(); ++n) {
    if (n != prefer && nodes_[n].alive) {
      rest.push_back(n);
    }
  }
  std::sort(rest.begin(), rest.end(),
            [&](int a, int b) { return FreeMemory(a) > FreeMemory(b); });
  candidates.insert(candidates.end(), rest.begin(), rest.end());

  for (int node : candidates) {
    auto entry = logs_[node].Append(size, nodes_[node].memory_capacity, cleaning_cost);
    if (entry.ok()) {
      SyncUsed(node);
      return std::make_pair(node, *entry);
    }
  }
  return ResourceExhaustedError("no node has cache capacity");
}

std::vector<int> Cluster::PickBackups(int master, int count) const {
  std::vector<int> candidates;
  for (int n = 0; n < num_nodes(); ++n) {
    if (n != master && nodes_[n].alive) {
      candidates.push_back(n);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](int a, int b) { return nodes_[a].disk_used < nodes_[b].disk_used; });
  if (static_cast<int>(candidates.size()) > count) {
    candidates.resize(static_cast<std::size_t>(count));
  }
  return candidates;
}

Status Cluster::ApplyWrite(int client_node, const std::string& key, Bytes size,
                           std::uint64_t version, ObjectClass object_class, bool dirty,
                           Checksum fingerprint, SimDuration* cost) {
  if (size <= 0 || size > options_.max_object_size) {
    ++*m_.write_rejects;
    return InvalidArgumentError("object size outside cacheable range");
  }

  // An update replaces the old entry; prefer keeping the existing master.
  int prefer = client_node;
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    const CachedObject& existing = it->second;
    prefer = existing.master;
    (void)logs_[existing.master].Free(existing.log_entry);
    SyncUsed(existing.master);
    for (int b : existing.backups) {
      nodes_[b].disk_used -= existing.size;
      SIM_ASSERT(nodes_[b].disk_used >= 0) << "; backup disk accounting underflow on node " << b;
    }
    objects_.erase(it);
  }

  SimDuration cleaning_cost = 0;
  const auto placement = PlaceInLog(prefer, size, &cleaning_cost);
  if (!placement.ok()) {
    ++*m_.write_rejects;
    return placement.status();
  }
  const int master = placement->first;

  CachedObject obj;
  obj.key = key;
  obj.size = size;
  obj.version = version;
  obj.object_class = object_class;
  obj.dirty = dirty;
  obj.persisted = !dirty;
  obj.created_at = loop_->now();
  obj.last_access = loop_->now();
  obj.master = master;
  obj.log_entry = placement->second;
  obj.backups = PickBackups(master, options_.replication_factor);
  for (int b : obj.backups) {
    nodes_[b].disk_used += size;
  }
  // Stamp the stored checksum: the caller's fingerprint (proxy edge) when one
  // was carried through, else derived here. Every replica starts healthy.
  if (fingerprint == 0) {
    fingerprint = PayloadFingerprint(key, size);
  }
  obj.checksum = StampChecksum(fingerprint, version);
  obj.backup_checksums.assign(obj.backups.size(), obj.checksum);
  objects_.emplace(key, obj);
  ++*m_.writes;
  ++nodes_[master].writes_served;

  // Master write + parallel replication to backup durable buffers, plus any
  // cleaner pass the append triggered.
  const SimDuration access =
      (client_node == master ? options_.local_access : options_.remote_access)
          .Cost(size, &rng_);
  const SimDuration replicate =
      obj.backups.empty() ? 0 : options_.remote_access.Cost(size, &rng_);
  *cost += access + replicate + cleaning_cost;
  return OkStatus();
}

void Cluster::Write(int client_node, const std::string& key, Bytes size,
                    std::uint64_t version, ObjectClass object_class, bool dirty,
                    Callback done) {
  Write(client_node, key, size, version, object_class, dirty, /*fingerprint=*/0,
        std::move(done));
}

void Cluster::Write(int client_node, const std::string& key, Bytes size,
                    std::uint64_t version, ObjectClass object_class, bool dirty,
                    Checksum fingerprint, Callback done) {
  SimDuration cost = 0;
  const Status status = ApplyWrite(client_node, key, size, version, object_class, dirty,
                                   fingerprint, &cost);
  loop_->ScheduleAfter(cost, [done = std::move(done), status] { done(status); });
}

void Cluster::ConditionalWrite(int client_node, const std::string& key, Bytes size,
                               std::uint64_t expected_version, std::uint64_t new_version,
                               ObjectClass object_class, bool dirty, Callback done) {
  auto it = objects_.find(key);
  const std::uint64_t current = it == objects_.end() ? 0 : it->second.version;
  if (current != expected_version) {
    ++*m_.version_conflicts;
    loop_->ScheduleAfter(options_.local_access.Cost(0, &rng_),
                         [done = std::move(done), key] {
                           done(AbortedError("version mismatch: " + key));
                         });
    return;
  }
  SimDuration cost = 0;
  const Status status = ApplyWrite(client_node, key, size, new_version, object_class,
                                   dirty, /*fingerprint=*/0, &cost);
  loop_->ScheduleAfter(cost, [done = std::move(done), status] { done(status); });
}

void Cluster::Commit(int client_node, std::vector<TxWrite> writes, Callback done) {
  // Validation phase: every expected version must hold (and sizes be legal)
  // before anything is applied — mismatches abort with no side effects.
  for (const TxWrite& write : writes) {
    auto it = objects_.find(write.key);
    const std::uint64_t current = it == objects_.end() ? 0 : it->second.version;
    if (current != write.expected_version) {
      ++*m_.version_conflicts;
      loop_->ScheduleAfter(options_.remote_access.Cost(0, &rng_),
                           [done = std::move(done), key = write.key] {
                             done(AbortedError("transaction conflict on " + key));
                           });
      return;
    }
    if (write.size <= 0 || write.size > options_.max_object_size) {
      loop_->ScheduleAfter(0, [done = std::move(done)] {
        done(InvalidArgumentError("transaction write outside cacheable range"));
      });
      return;
    }
  }
  // Apply phase. A capacity failure mid-way is surfaced as kResourceExhausted;
  // earlier writes of the transaction are rolled back by removal.
  SimDuration cost = options_.remote_access.Cost(0, &rng_);  // Prepare round.
  std::vector<std::string> applied;
  for (const TxWrite& write : writes) {
    const Status status = ApplyWrite(client_node, write.key, write.size,
                                     write.new_version, write.object_class, write.dirty,
                                     /*fingerprint=*/0, &cost);
    if (!status.ok()) {
      for (const std::string& key : applied) {
        (void)Remove(key);
      }
      loop_->ScheduleAfter(cost, [done = std::move(done), status] { done(status); });
      return;
    }
    applied.push_back(write.key);
  }
  ++*m_.transactions_committed;
  loop_->ScheduleAfter(cost, [done = std::move(done)] { done(OkStatus()); });
}

void Cluster::Read(int client_node, const std::string& key, ReadCallback done) {
  auto it = objects_.find(key);
  ++*m_.reads;
  if (it == objects_.end()) {
    ++*m_.read_misses;
    loop_->ScheduleAfter(options_.local_access.Cost(0, &rng_),
                         [done = std::move(done), key] {
                           done(NotFoundError("cache miss: " + key));
                         });
    return;
  }
  CachedObject& obj = it->second;
  obj.access_count += 1;
  obj.last_access = loop_->now();
  const bool local = obj.master == client_node;
  if (local) {
    ++*m_.read_hits_local;
  } else {
    ++*m_.read_hits_remote;
  }
  ++nodes_[obj.master].reads_served;
  SimDuration cost =
      (local ? options_.local_access : options_.remote_access).Cost(obj.size, &rng_);

  // Integrity gate: verify the master copy before serving. A mismatch
  // self-heals from the first healthy backup replica (extra disk load at the
  // backup); with every copy corrupt the object is dropped and the read fails
  // kDataLoss so the caller falls through to the RSDS — never ack corruption.
  const Checksum expected = ExpectedChecksum(obj.key, obj.size, obj.version);
  if (obj.checksum != expected) {
    NoteCorruption(key, obj.master, "read_master");
    int healthy = -1;
    for (std::size_t i = 0; i < obj.backups.size(); ++i) {
      if (nodes_[static_cast<std::size_t>(obj.backups[i])].alive &&
          obj.backup_checksums[i] == expected) {
        healthy = static_cast<int>(i);
        break;
      }
    }
    if (healthy < 0) {
      ++*m_.read_data_loss;
      // Drop the object everywhere: a re-fetch from the RSDS re-admits a good
      // copy, which is the repair path when no replica survives.
      (void)logs_[obj.master].Free(obj.log_entry);
      SyncUsed(obj.master);
      for (int b : obj.backups) {
        nodes_[b].disk_used -= obj.size;
      }
      objects_.erase(it);
      loop_->ScheduleAfter(cost, [done = std::move(done), key] {
        done(DataLossError("all copies corrupt: " + key));
      });
      return;
    }
    obj.checksum = expected;
    cost += options_.disk_read.Cost(obj.size, &rng_);
    NoteRepair(key, obj.master, "replica");
  }
  CachedObject snapshot = obj;
  loop_->ScheduleAfter(cost, [done = std::move(done), snapshot = std::move(snapshot)] {
    done(snapshot);
  });
}

Result<int> Cluster::MasterOf(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("no master: " + key);
  }
  return it->second.master;
}

Result<CachedObject> Cluster::Inspect(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("inspect: " + key);
  }
  return it->second;
}

std::vector<std::string> Cluster::KeysOn(int node) const {
  std::vector<std::string> keys;
  for (const auto& [key, obj] : objects_) {
    if (obj.master == node) {
      keys.push_back(key);
    }
  }
  return keys;
}

std::vector<CachedObject> Cluster::ObjectsOn(int node) const {
  std::vector<CachedObject> snapshot;
  for (const auto& [key, obj] : objects_) {
    if (obj.master == node) {
      snapshot.push_back(obj);
    }
  }
  return snapshot;
}

Status Cluster::Remove(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("remove: " + key);
  }
  const CachedObject& obj = it->second;
  (void)logs_[obj.master].Free(obj.log_entry);
  SyncUsed(obj.master);
  for (int b : obj.backups) {
    nodes_[b].disk_used -= obj.size;
  }
  objects_.erase(it);
  ++*m_.evictions;
  return OkStatus();
}

Status Cluster::MarkPersisted(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("mark persisted: " + key);
  }
  it->second.dirty = false;
  it->second.persisted = true;
  return OkStatus();
}

Status Cluster::SetObjectClass(const std::string& key, ObjectClass object_class) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("set class: " + key);
  }
  it->second.object_class = object_class;
  return OkStatus();
}

Status Cluster::SetCapacity(int node, Bytes capacity, SimDuration* out_duration) {
  NodeStats& stats = nodes_[CheckNode(node)];
  if (capacity < 0) {
    return InvalidArgumentError("negative capacity");
  }
  SimDuration duration = options_.control_op_cost;
  if (capacity < logs_[node].footprint()) {
    // Fragmented: a cleaner pass may compact the log under the new bound.
    const CleanResult cleaned = logs_[node].Clean(capacity);
    duration += cleaned.duration;
    if (capacity < logs_[node].footprint()) {
      return FailedPreconditionError("capacity below log footprint; evict or migrate first");
    }
  }
  stats.memory_capacity = capacity;
  if (out_duration != nullptr) {
    *out_duration = duration;
  }
  return OkStatus();
}

Result<MigrationResult> Cluster::MigrateMaster(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("migrate: " + key);
  }
  CachedObject& obj = it->second;
  // Elect a backup that can absorb the object into its log, most-free first.
  std::vector<int> order = obj.backups;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return FreeMemory(a) > FreeMemory(b); });
  int new_master = -1;
  SegmentedLog::EntryId new_entry = 0;
  SimDuration cleaning_cost = 0;
  for (int b : order) {
    if (!nodes_[b].alive) {
      continue;
    }
    auto entry = logs_[b].Append(obj.size, nodes_[b].memory_capacity, &cleaning_cost);
    if (entry.ok()) {
      new_master = b;
      new_entry = *entry;
      break;
    }
  }
  if (new_master < 0) {
    return ResourceExhaustedError("no backup can host the master copy: " + key);
  }
  const int old_master = obj.master;
  // The new master already holds an on-disk replica: it loads the object from
  // local disk. The old master demotes to backup, keeping an on-disk copy —
  // replication factor is preserved with zero inter-node transfer (§6.4).
  (void)logs_[old_master].Free(obj.log_entry);
  SyncUsed(old_master);
  SyncUsed(new_master);
  nodes_[new_master].disk_used -= obj.size;
  nodes_[old_master].disk_used += obj.size;
  // Checksums ride the role swap: the new master adopts the checksum its disk
  // replica stored, verified on load — a rotted replica is repaired from the
  // (still alive, still healthy) old master's copy before promotion. The old
  // master's copy becomes the backup copy in that slot.
  const auto slot = std::find(obj.backups.begin(), obj.backups.end(), new_master);
  SIM_ASSERT(slot != obj.backups.end()) << "; migrate target is not a backup";
  const std::size_t slot_idx =
      static_cast<std::size_t>(std::distance(obj.backups.begin(), slot));
  Checksum promoted = obj.backup_checksums[slot_idx];
  const Checksum expected = ExpectedChecksum(obj.key, obj.size, obj.version);
  if (promoted != expected) {
    NoteCorruption(key, new_master, "migrate_load");
    if (obj.checksum == expected) {
      promoted = expected;  // Re-fetched from the old master over the network.
      cleaning_cost += options_.remote_access.Cost(obj.size, &rng_);
      NoteRepair(key, new_master, "replica");
    }
  }
  obj.backup_checksums[slot_idx] = obj.checksum;
  obj.checksum = promoted;
  std::replace(obj.backups.begin(), obj.backups.end(), new_master, old_master);
  obj.master = new_master;
  obj.log_entry = new_entry;
  ++*m_.migrations;

  MigrationResult result;
  result.old_master = old_master;
  result.new_master = new_master;
  // Almost pure local-disk load: the promotion RPC itself is tens of
  // microseconds (§7.2.1: 0.18 ms at 8 MB .. 13.5 ms at 1 GB).
  result.duration = options_.disk_read.Cost(obj.size, &rng_) + Micros(30) + cleaning_cost;
  return result;
}

RecoveryResult Cluster::CrashNode(int node) {
  NodeStats& crashed = nodes_[CheckNode(node)];
  if (!crashed.alive) {
    return RecoveryResult{};  // Already down: nothing left to lose or recover.
  }
  crashed.alive = false;
  ++*m_.node_crashes;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kNodeCrash, 0, 0, node);
  }
  // The crashed node's DRAM contents are gone.
  logs_[node] = SegmentedLog(options_.log);
  crashed.memory_used = 0;

  RecoveryResult result;
  std::vector<SimDuration> per_node_load(nodes_.size(), 0);

  std::vector<std::string> to_drop;
  for (auto& [key, obj] : objects_) {
    if (obj.master == node) {
      // Promote a surviving backup (partitioned recovery: spread by free mem).
      // Recovery re-replication verifies the copy it loads: healthy replicas
      // are preferred, and a corrupt promotion repairs from any surviving
      // healthy copy before new replicas are cut from it.
      const Checksum expected = ExpectedChecksum(obj.key, obj.size, obj.version);
      std::vector<std::size_t> order(obj.backups.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const bool healthy_a = obj.backup_checksums[a] == expected;
        const bool healthy_b = obj.backup_checksums[b] == expected;
        if (healthy_a != healthy_b) {
          return healthy_a;
        }
        return FreeMemory(obj.backups[a]) > FreeMemory(obj.backups[b]);
      });
      int new_master = -1;
      std::size_t promoted_idx = 0;
      SegmentedLog::EntryId new_entry = 0;
      for (std::size_t i : order) {
        const int b = obj.backups[i];
        if (!nodes_[b].alive) {
          continue;
        }
        auto entry = logs_[b].Append(obj.size, nodes_[b].memory_capacity, nullptr);
        if (entry.ok()) {
          new_master = b;
          promoted_idx = i;
          new_entry = *entry;
          break;
        }
      }
      if (new_master < 0) {
        to_drop.push_back(key);
        ++result.objects_lost;
        continue;
      }
      Checksum promoted = obj.backup_checksums[promoted_idx];
      if (promoted != expected) {
        NoteCorruption(key, new_master, "recovery_load");
        // Only corrupt copies could host; repair from any healthy survivor
        // (a copy that lost the capacity race still has good bits on disk).
        for (std::size_t i = 0; i < obj.backups.size(); ++i) {
          if (i != promoted_idx && nodes_[obj.backups[i]].alive &&
              obj.backup_checksums[i] == expected) {
            promoted = expected;
            NoteRepair(key, new_master, "replica");
            break;
          }
        }
      }
      SyncUsed(new_master);
      nodes_[new_master].disk_used -= obj.size;
      obj.backups.erase(obj.backups.begin() + static_cast<std::ptrdiff_t>(promoted_idx));
      obj.backup_checksums.erase(obj.backup_checksums.begin() +
                                 static_cast<std::ptrdiff_t>(promoted_idx));
      obj.master = new_master;
      obj.checksum = promoted;
      obj.log_entry = new_entry;
      per_node_load[static_cast<std::size_t>(new_master)] +=
          options_.disk_read.Cost(obj.size, &rng_);
      ++result.objects_recovered;
      // Restore the replication factor: the promotion consumed one on-disk
      // copy, so the coordinator re-replicates to a fresh backup.
      while (static_cast<int>(obj.backups.size()) < options_.replication_factor) {
        int fresh = -1;
        for (int candidate : PickBackups(obj.master, num_nodes())) {
          if (std::find(obj.backups.begin(), obj.backups.end(), candidate) ==
              obj.backups.end()) {
            fresh = candidate;
            break;
          }
        }
        if (fresh < 0) {
          break;  // Not enough distinct alive nodes.
        }
        obj.backups.push_back(fresh);
        obj.backup_checksums.push_back(obj.checksum);
        nodes_[fresh].disk_used += obj.size;
      }
    }
    // Re-replicate backup copies that lived on the crashed node. The fresh
    // copy is cut from the master's (verified-at-promotion) copy.
    auto backup_it = std::find(obj.backups.begin(), obj.backups.end(), node);
    if (backup_it != obj.backups.end()) {
      const std::ptrdiff_t idx = std::distance(obj.backups.begin(), backup_it);
      obj.backups.erase(backup_it);
      obj.backup_checksums.erase(obj.backup_checksums.begin() + idx);
      nodes_[node].disk_used -= obj.size;
      for (int candidate : PickBackups(obj.master, num_nodes())) {
        if (std::find(obj.backups.begin(), obj.backups.end(), candidate) ==
            obj.backups.end()) {
          obj.backups.push_back(candidate);
          obj.backup_checksums.push_back(obj.checksum);
          nodes_[candidate].disk_used += obj.size;
          break;
        }
      }
    }
  }
  for (const std::string& key : to_drop) {
    auto it = objects_.find(key);
    for (int b : it->second.backups) {
      nodes_[b].disk_used -= it->second.size;
    }
    objects_.erase(it);
  }
  // Makespan of the parallel partitioned reload.
  for (SimDuration d : per_node_load) {
    result.duration = std::max(result.duration, d);
  }
  m_.objects_recovered->Add(result.objects_recovered);
  m_.objects_lost->Add(result.objects_lost);
  m_.recovery_ms->Observe(ToMillis(result.duration));
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kNodeRecovered, 0, 0, node, "",
                    std::to_string(result.objects_recovered) + "_recovered_" +
                        std::to_string(result.objects_lost) + "_lost");
  }
  return result;
}

void Cluster::RestartNode(int node) {
  NodeStats& stats = nodes_[CheckNode(node)];
  if (stats.alive) {
    return;
  }
  stats.alive = true;
  ++*m_.node_restarts;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kNodeRestart, 0, 0, node);
  }
  // Objects written while the node was down picked backups among the survivors;
  // with fewer than rf alive peers they stayed under-replicated. The restarted
  // node's disk is empty but writable, so the coordinator re-replicates onto it.
  for (auto& [key, obj] : objects_) {
    if (obj.master == node ||
        std::find(obj.backups.begin(), obj.backups.end(), node) != obj.backups.end()) {
      continue;
    }
    if (static_cast<int>(obj.backups.size()) < options_.replication_factor) {
      obj.backups.push_back(node);
      obj.backup_checksums.push_back(obj.checksum);  // Fresh copy from the master.
      nodes_[node].disk_used += obj.size;
    }
  }
}

int Cluster::CorruptReplica(int node, int flips) {
  CheckNode(node);
  int corrupted = 0;
  // Key order: replays flip the same copies. Only healthy copies are damaged,
  // so repeated events escalate instead of accidentally un-flipping (XOR).
  for (auto& [key, obj] : objects_) {
    if (corrupted >= flips) {
      break;
    }
    const Checksum expected = ExpectedChecksum(key, obj.size, obj.version);
    for (std::size_t i = 0; i < obj.backups.size(); ++i) {
      if (obj.backups[i] == node && obj.backup_checksums[i] == expected) {
        obj.backup_checksums[i] = CorruptChecksum(obj.backup_checksums[i]);
        ++corrupted;
        break;
      }
    }
  }
  return corrupted;
}

int Cluster::CorruptSegment(int node, int flips) {
  CheckNode(node);
  int corrupted = 0;
  for (auto& [key, obj] : objects_) {
    if (corrupted >= flips) {
      break;
    }
    if (obj.master == node &&
        obj.checksum == ExpectedChecksum(key, obj.size, obj.version)) {
      obj.checksum = CorruptChecksum(obj.checksum);
      ++corrupted;
    }
  }
  return corrupted;
}

Cluster::ScrubResult Cluster::ScrubObject(const std::string& key) {
  ScrubResult result;
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return result;  // Raced an eviction, drop, or crash: nothing to scrub.
  }
  CachedObject& obj = it->second;
  const Checksum expected = ExpectedChecksum(key, obj.size, obj.version);
  // Repair source for the flight record: a surviving healthy copy when one
  // exists (replica-to-replica copy), else the authoritative RSDS payload.
  bool any_healthy = obj.checksum == expected;
  for (const Checksum c : obj.backup_checksums) {
    any_healthy = any_healthy || c == expected;
  }
  const char* source = any_healthy ? "replica" : "rsds";
  if (obj.checksum != expected) {
    NoteCorruption(key, obj.master, "scrub_master");
    obj.checksum = expected;
    NoteRepair(key, obj.master, source);
    ++result.corrupt_copies;
    result.corrupt_nodes.push_back(obj.master);
  }
  for (std::size_t i = 0; i < obj.backups.size(); ++i) {
    if (obj.backup_checksums[i] != expected) {
      NoteCorruption(key, obj.backups[i], "scrub_replica");
      obj.backup_checksums[i] = expected;
      NoteRepair(key, obj.backups[i], source);
      ++result.corrupt_copies;
      result.corrupt_nodes.push_back(obj.backups[i]);
    }
  }
  return result;
}

std::vector<std::string> Cluster::KeysAfter(const std::string& after,
                                            std::size_t limit) const {
  std::vector<std::string> keys;
  for (auto it = objects_.upper_bound(after);
       it != objects_.end() && keys.size() < limit; ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

RecoveryResult Cluster::QuarantineNode(int node) {
  NodeStats& stats = nodes_[CheckNode(node)];
  if (!stats.alive || AliveNodes() <= 1) {
    return RecoveryResult{};  // Already down, or nowhere to drain to.
  }
  // Mark the node dead first so placement/backup selection excludes it; unlike
  // a crash its copies remain readable for the drain below.
  stats.alive = false;
  ++*m_.nodes_quarantined;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kNodeQuarantined, 0, 0, node);
  }

  RecoveryResult result;
  std::vector<SimDuration> per_node_load(nodes_.size(), 0);
  std::vector<std::string> to_drop;
  for (auto& [key, obj] : objects_) {
    const Checksum expected = ExpectedChecksum(key, obj.size, obj.version);
    if (obj.master == node) {
      // Re-master onto a backup (its disk already holds a copy). The drain
      // verifies whatever it loads against the RSDS, so — unlike crash
      // recovery — the new master always starts healthy.
      std::vector<std::size_t> order(obj.backups.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const bool healthy_a = obj.backup_checksums[a] == expected;
        const bool healthy_b = obj.backup_checksums[b] == expected;
        if (healthy_a != healthy_b) {
          return healthy_a;
        }
        return FreeMemory(obj.backups[a]) > FreeMemory(obj.backups[b]);
      });
      int new_master = -1;
      std::size_t promoted_idx = 0;
      SegmentedLog::EntryId new_entry = 0;
      for (std::size_t i : order) {
        const int b = obj.backups[i];
        if (!nodes_[b].alive) {
          continue;
        }
        auto entry = logs_[b].Append(obj.size, nodes_[b].memory_capacity, nullptr);
        if (entry.ok()) {
          new_master = b;
          promoted_idx = i;
          new_entry = *entry;
          break;
        }
      }
      if (new_master < 0) {
        to_drop.push_back(key);
        ++result.objects_lost;
        continue;
      }
      if (obj.backup_checksums[promoted_idx] != expected) {
        NoteCorruption(key, new_master, "quarantine_drain");
        NoteRepair(key, new_master, "rsds");
      }
      (void)logs_[node].Free(obj.log_entry);
      SyncUsed(node);
      SyncUsed(new_master);
      nodes_[new_master].disk_used -= obj.size;
      obj.backups.erase(obj.backups.begin() + static_cast<std::ptrdiff_t>(promoted_idx));
      obj.backup_checksums.erase(obj.backup_checksums.begin() +
                                 static_cast<std::ptrdiff_t>(promoted_idx));
      obj.master = new_master;
      obj.checksum = expected;
      obj.log_entry = new_entry;
      per_node_load[static_cast<std::size_t>(new_master)] +=
          options_.disk_read.Cost(obj.size, &rng_);
      ++result.objects_recovered;
      while (static_cast<int>(obj.backups.size()) < options_.replication_factor) {
        int fresh = -1;
        for (int candidate : PickBackups(obj.master, num_nodes())) {
          if (std::find(obj.backups.begin(), obj.backups.end(), candidate) ==
              obj.backups.end()) {
            fresh = candidate;
            break;
          }
        }
        if (fresh < 0) {
          break;  // Not enough distinct alive nodes.
        }
        obj.backups.push_back(fresh);
        obj.backup_checksums.push_back(expected);
        nodes_[fresh].disk_used += obj.size;
      }
    }
    // Evacuate backup copies off the quarantined node; the replacement copy is
    // verified against the RSDS, so a rotted copy is repaired on the way out.
    auto backup_it = std::find(obj.backups.begin(), obj.backups.end(), node);
    if (backup_it != obj.backups.end()) {
      const std::ptrdiff_t idx = std::distance(obj.backups.begin(), backup_it);
      const bool was_corrupt =
          obj.backup_checksums[static_cast<std::size_t>(idx)] != expected;
      obj.backups.erase(backup_it);
      obj.backup_checksums.erase(obj.backup_checksums.begin() + idx);
      nodes_[node].disk_used -= obj.size;
      if (was_corrupt) {
        NoteCorruption(key, node, "quarantine_drain");
      }
      for (int candidate : PickBackups(obj.master, num_nodes())) {
        if (std::find(obj.backups.begin(), obj.backups.end(), candidate) ==
            obj.backups.end()) {
          obj.backups.push_back(candidate);
          obj.backup_checksums.push_back(expected);
          nodes_[candidate].disk_used += obj.size;
          if (was_corrupt) {
            NoteRepair(key, candidate, "rsds");
          }
          break;
        }
      }
    }
  }
  for (const std::string& key : to_drop) {
    auto it = objects_.find(key);
    for (int b : it->second.backups) {
      nodes_[b].disk_used -= it->second.size;
    }
    objects_.erase(it);
  }
  // The drain emptied the node's DRAM; reset the log so a later RestartNode
  // brings it back clean, mirroring crash recovery.
  logs_[node] = SegmentedLog(options_.log);
  stats.memory_used = 0;
  for (SimDuration d : per_node_load) {
    result.duration = std::max(result.duration, d);
  }
  m_.objects_recovered->Add(result.objects_recovered);
  m_.objects_lost->Add(result.objects_lost);
  m_.recovery_ms->Observe(ToMillis(result.duration));
  return result;
}

int Cluster::AliveNodes() const {
  int alive = 0;
  for (const NodeStats& node : nodes_) {
    if (node.alive) {
      ++alive;
    }
  }
  return alive;
}

Bytes Cluster::TotalUsed() const {
  Bytes total = 0;
  for (const NodeStats& node : nodes_) {
    total += node.memory_used;
  }
  return total;
}

Bytes Cluster::TotalCapacity() const {
  Bytes total = 0;
  for (const NodeStats& node : nodes_) {
    if (node.alive) {
      total += node.memory_capacity;
    }
  }
  return total;
}

}  // namespace ofc::rc
