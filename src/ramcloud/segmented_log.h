// Log-structured memory for a RAMCloud master (Ousterhout et al., TOCS 2015,
// §4 of that paper): objects are appended to fixed-size segments; deletions
// and overwrites leave dead bytes behind; a cleaner compacts the emptiest
// segments by relocating their live entries, reclaiming whole segments.
//
// OFC inherits this allocator (§6.1): the cache's physical footprint is the
// *segment* footprint, not the live-byte sum, so vertical scaling interacts
// with fragmentation — shrinking a node's memory pool below its segment
// footprint requires a cleaning pass first. The cluster accounts both numbers
// and charges cleaning time (a memory-bandwidth-bound copy) to the operation
// that triggered it.
#ifndef OFC_RAMCLOUD_SEGMENTED_LOG_H_
#define OFC_RAMCLOUD_SEGMENTED_LOG_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace ofc::rc {

struct SegmentedLogOptions {
  Bytes segment_size = MiB(8);
  // The cleaner stops once the live/footprint ratio reaches this target.
  double cleaner_target_utilization = 0.95;
  // Effective copy bandwidth of the cleaner (memory-to-memory).
  double cleaner_bytes_per_second = 10e9;
};

struct CleanResult {
  Bytes bytes_copied = 0;
  int segments_freed = 0;
  SimDuration duration = 0;
};

struct SegmentedLogStats {
  std::uint64_t appends = 0;
  std::uint64_t frees = 0;
  std::uint64_t cleaner_runs = 0;
  Bytes cleaner_bytes_copied = 0;
  int segments_allocated = 0;
  int segments_reclaimed = 0;
};

class SegmentedLog {
 public:
  using EntryId = std::uint64_t;

  explicit SegmentedLog(SegmentedLogOptions options = {});

  // Appends an entry of `size` bytes, allocating segments as needed but never
  // exceeding `capacity` bytes of footprint. When the append does not fit, the
  // cleaner runs first; if it still does not fit, kResourceExhausted.
  // On success the id is returned and any cleaning cost is added to
  // `*cleaning_cost` (may be null).
  Result<EntryId> Append(Bytes size, Bytes capacity, SimDuration* cleaning_cost = nullptr);

  // Marks an entry dead (its bytes remain in the segment until cleaned).
  Status Free(EntryId id);

  // Compacts lowest-utilization segments until footprint <= max_footprint and
  // utilization >= the configured target (or no further progress is possible).
  CleanResult Clean(Bytes max_footprint);

  Bytes live_bytes() const { return live_bytes_; }
  // Physical footprint: the capacity of all allocated segments.
  Bytes footprint() const { return footprint_; }
  double utilization() const;
  std::size_t num_segments() const { return allocated_segments_; }
  std::size_t num_entries() const { return entry_segment_.size(); }
  // Size of a specific live entry; kNotFound for dead/unknown ids.
  Result<Bytes> EntrySize(EntryId id) const;
  const SegmentedLogStats& stats() const { return stats_; }

 private:
  struct Segment {
    bool allocated = false;
    Bytes cap = 0;   // segment_size, or the entry size for jumbo entries.
    Bytes live = 0;  // Live bytes.
    Bytes used = 0;  // Appended bytes (live + dead), <= cap.
    // Live entries and sizes. Ordered by id: the cleaner iterates this map and
    // relocation order determines survivor-segment packing, which is
    // event-visible — it must not follow hash-bucket order.
    std::map<EntryId, Bytes> entries;
  };

  // Index of an allocated segment with room for `size` more bytes, allocating
  // a new segment when footprint allows; -1 when capacity forbids growth.
  int FindSlot(Bytes size, Bytes capacity);
  std::size_t AllocateSegment(Bytes cap);
  void ReleaseSegment(std::size_t index);

  SegmentedLogOptions options_;
  std::vector<Segment> segments_;  // Stable indexes; slots are reused.
  std::vector<std::size_t> free_slots_;
  std::size_t allocated_segments_ = 0;
  Bytes footprint_ = 0;
  // Looked up by id, never iterated; salted hashing keeps that honest under
  // test (tests/determinism_test.cpp perturbs the salt).
  std::unordered_map<EntryId, std::size_t, DetHash<EntryId>> entry_segment_;
  Bytes live_bytes_ = 0;
  EntryId next_id_ = 1;
  SegmentedLogStats stats_;
};

}  // namespace ofc::rc

#endif  // OFC_RAMCLOUD_SEGMENTED_LOG_H_
