// A RAMCloud-style distributed in-memory key-value store (Ousterhout et al.,
// TOCS 2015), extended the way OFC extends RAMCloud (§6.1, §6.3, §6.4):
//
//   * every worker node runs a storage server holding a *master* role (primary,
//     in-memory copies of some objects) and a *backup* role (on-disk replicas of
//     other nodes' objects);
//   * per-object read-access counters (n_access) and last-access timestamps
//     (T_access) feed OFC's periodic eviction policy;
//   * per-node memory capacity is dynamically adjustable (vertical scaling);
//   * an optimized master-migration protocol promotes a backup replica to
//     master — the object is loaded from the new master's local disk, so *no
//     inter-node transfer happens* (§6.4);
//   * object classes (input / pipeline-intermediate / final-output) and dirty
//     bits support OFC's admission, write-back, and reclamation policies;
//   * fail-stop crashes with fast partitioned recovery from backups.
//
// The cluster is a facade over per-node state driven by the shared event loop;
// data-path operations are asynchronous with calibrated latency models, while
// management-plane operations mutate state synchronously and *report* their
// simulated control-path duration for the caller to account (Figure 8).
#ifndef OFC_RAMCLOUD_CLUSTER_H_
#define OFC_RAMCLOUD_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/rng.h"
#include "src/common/sim_assert.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/ramcloud/segmented_log.h"
#include "src/sim/event_loop.h"
#include "src/sim/latency.h"

namespace ofc::rc {

enum class ObjectClass {
  kInput,         // Read by functions from the RSDS.
  kIntermediate,  // Produced mid-pipeline; dropped when the pipeline completes.
  kFinalOutput,   // Produced by the last stage; dropped once persisted.
};

struct CachedObject {
  std::string key;
  Bytes size = 0;
  std::uint64_t version = 0;  // Mirrors the RSDS latest_version of this payload.
  ObjectClass object_class = ObjectClass::kInput;
  bool dirty = false;      // Payload newer than what the RSDS holds.
  bool persisted = true;   // !dirty, tracked separately for final outputs.
  std::uint32_t access_count = 0;  // OFC extension: n_access.
  SimTime last_access = 0;         // OFC extension: T_access.
  SimTime created_at = 0;
  int master = -1;
  std::vector<int> backups;
  // Entry in the master's log-structured memory.
  SegmentedLog::EntryId log_entry = 0;
  // Integrity: the checksum stored with the master copy, plus one per backup
  // copy (parallel to `backups`). A healthy copy stores
  // ExpectedChecksum(key, size, version); anything else is corruption. The
  // checksums live in coordinator metadata, so they survive log-cleaner
  // relocation and migration with the object.
  Checksum checksum = 0;
  std::vector<Checksum> backup_checksums;
};

struct ClusterOptions {
  int replication_factor = 2;       // Number of on-disk backup copies.
  Bytes max_object_size = MiB(10);  // OFC raises RAMCloud's 1 MB cap to 10 MB.
  Bytes default_capacity = MiB(512);
  // Master memory is log-structured (segments + cleaner), as in RAMCloud.
  SegmentedLogOptions log;
  // Control-plane cost of a memory-pool reconfiguration (Figure 8: ~289 us for
  // a shrink without migration/eviction).
  SimDuration control_op_cost = Micros(250);
  sim::LatencyModel local_access = sim::LatencyProfiles::RamcloudLocal();
  sim::LatencyModel remote_access = sim::LatencyProfiles::RamcloudRemote();
  sim::LatencyModel disk_read = sim::LatencyProfiles::BackupDiskRead();
  sim::LatencyModel disk_write = sim::LatencyProfiles::BackupDiskWrite();
  // Observability sinks (src/obs/). Null `metrics` -> the cluster owns a
  // private registry; null `flight` -> node crash/restart/recovery lifecycle
  // events are skipped.
  obs::MetricsRegistry* metrics = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

struct NodeStats {
  Bytes memory_capacity = 0;
  Bytes memory_used = 0;
  Bytes disk_used = 0;
  bool alive = true;
  std::uint64_t reads_served = 0;
  std::uint64_t writes_served = 0;
};

struct MigrationResult {
  int old_master = -1;
  int new_master = -1;
  SimDuration duration = 0;  // Disk load at the new master; no network transfer.
};

struct RecoveryResult {
  std::size_t objects_recovered = 0;
  std::size_t objects_lost = 0;  // No surviving backup (under-replicated).
  SimDuration duration = 0;      // Parallel partitioned recovery makespan.
};

// Snapshot view over the cluster's `ofc.ramcloud.*` registry counters.
struct ClusterStats {
  std::uint64_t reads = 0;
  std::uint64_t read_hits_local = 0;
  std::uint64_t read_hits_remote = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_rejects = 0;
  std::uint64_t version_conflicts = 0;  // Conditional writes / commits aborted.
  std::uint64_t transactions_committed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t objects_recovered = 0;  // Backup promotions after crashes.
  std::uint64_t objects_lost = 0;       // No surviving replica at crash time.
  std::uint64_t checksum_failures = 0;  // Corrupt copies detected (read/scrub/recovery).
  std::uint64_t integrity_repairs = 0;  // Copies restored from replica or RSDS.
  std::uint64_t read_data_loss = 0;     // Reads failed: every copy corrupt.
  std::uint64_t nodes_quarantined = 0;  // Graceful drains triggered by scrub.
};

class Cluster {
 public:
  using Callback = std::function<void(Status)>;
  using ReadCallback = std::function<void(Result<CachedObject>)>;

  Cluster(sim::EventLoop* loop, int num_nodes, ClusterOptions options, Rng rng);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const ClusterOptions& options() const { return options_; }

  // ---- Data path -------------------------------------------------------------

  // Writes (creates or updates) an object. The master is preferably
  // `client_node`; if it lacks memory, the coordinator picks the node with the
  // most free memory. Completion fires after the master copy is in RAM and the
  // replication RPCs to the backups' durable buffers have been acknowledged
  // (disk flush continues in the background, as in RAMCloud).
  void Write(int client_node, const std::string& key, Bytes size, std::uint64_t version,
             ObjectClass object_class, bool dirty, Callback done);
  // Write with a caller-supplied payload fingerprint (the proxy stamps
  // PayloadFingerprint(key, size) at the edge); the stored checksum becomes
  // StampChecksum(fingerprint, version). The fingerprint-less overload derives
  // it internally, so legacy callers stay verifiable.
  void Write(int client_node, const std::string& key, Bytes size, std::uint64_t version,
             ObjectClass object_class, bool dirty, Checksum fingerprint, Callback done);

  // Reads an object from its master; latency depends on whether `client_node`
  // is the master (local) or not (remote). Bumps n_access / T_access.
  //
  // Integrity: the master copy's checksum is verified first. A mismatch
  // self-heals from the first healthy backup replica (extra local-disk load at
  // the backup, counted into the completion latency); if no healthy copy
  // survives the object is dropped and the read completes with kDataLoss — a
  // corrupt payload is never returned.
  void Read(int client_node, const std::string& key, ReadCallback done);

  // Conditional write (RAMCloud's reject rules, the primitive behind the
  // linearizable extensions of the paper's [24]): applies only when the cached
  // object's current version equals `expected_version` (0 = must not exist);
  // otherwise fails with kAborted and changes nothing.
  void ConditionalWrite(int client_node, const std::string& key, Bytes size,
                        std::uint64_t expected_version, std::uint64_t new_version,
                        ObjectClass object_class, bool dirty, Callback done);

  // All-or-nothing multi-object commit (Sinfonia-style mini-transaction):
  // every write's expected version is validated first; on any mismatch the
  // whole transaction aborts without side effects.
  struct TxWrite {
    std::string key;
    Bytes size = 0;
    std::uint64_t expected_version = 0;  // 0 = the object must not exist.
    std::uint64_t new_version = 0;
    ObjectClass object_class = ObjectClass::kInput;
    bool dirty = false;
  };
  void Commit(int client_node, std::vector<TxWrite> writes, Callback done);

  // ---- Coordinator queries (synchronous, control plane) ----------------------

  bool Contains(const std::string& key) const { return objects_.contains(key); }
  Result<int> MasterOf(const std::string& key) const;
  Result<CachedObject> Inspect(const std::string& key) const;
  std::size_t NumObjects() const { return objects_.size(); }

  // Keys mastered on `node`, unsorted (CacheAgent applies its own policy order).
  std::vector<std::string> KeysOn(int node) const;

  // Bulk metadata export: a snapshot of every object mastered on `node`, with
  // its access statistics (n_access, T_access, created_at), in the same order
  // KeysOn yields keys. One map walk instead of KeysOn + per-key Inspect — the
  // cache policy engine ranks reclamation candidates from this.
  std::vector<CachedObject> ObjectsOn(int node) const;

  // ---- Object management ------------------------------------------------------

  // Drops an object everywhere (memory + disk bookkeeping).
  Status Remove(const std::string& key);
  // Marks the payload as persisted in the RSDS (persistor completion).
  Status MarkPersisted(const std::string& key);
  Status SetObjectClass(const std::string& key, ObjectClass object_class);

  // ---- Vertical scaling --------------------------------------------------------

  Bytes Capacity(int node) const { return nodes_[CheckNode(node)].memory_capacity; }
  // Live bytes mastered on the node (what eviction policies reason about).
  Bytes Used(int node) const { return nodes_[CheckNode(node)].memory_used; }
  // Physically allocatable memory: capacity minus the log's segment footprint
  // (which exceeds the live bytes under fragmentation until the cleaner runs).
  Bytes FreeMemory(int node) const;
  const NodeStats& node_stats(int node) const { return nodes_[CheckNode(node)]; }
  const SegmentedLog& node_log(int node) const { return logs_[CheckNode(node)]; }

  // Adjusts the node's memory pool. Fails with kFailedPrecondition when
  // shrinking below current usage — the CacheAgent must first migrate or evict.
  // On success, reports the control-plane duration via `out_duration`.
  Status SetCapacity(int node, Bytes capacity, SimDuration* out_duration = nullptr);

  // ---- Optimized migration (§6.4) ----------------------------------------------

  // Moves the master role for `key` to one of its backup nodes (which already
  // holds an on-disk copy): the new master loads the object from local disk and
  // the old master demotes itself to backup. State changes are immediate; the
  // returned duration is the simulated cost for the caller to account.
  Result<MigrationResult> MigrateMaster(const std::string& key);

  // ---- Fault tolerance -----------------------------------------------------------

  // Fail-stop crash: all objects mastered on `node` are recovered by promoting
  // backups, partitioned across the surviving nodes (parallel makespan).
  // Objects with no surviving replica are dropped and counted as lost. Backup
  // copies on the crashed node are re-replicated to other nodes. Crashing a
  // node that is already down is a no-op (empty RecoveryResult).
  RecoveryResult CrashNode(int node);
  // Brings a crashed node back empty (DRAM is gone); under-replicated objects
  // adopt it as a fresh backup so the replication factor recovers. No-op when
  // the node is already alive.
  void RestartNode(int node);
  bool Alive(int node) const { return nodes_[CheckNode(node)].alive; }
  int AliveNodes() const;

  // ---- Data integrity ------------------------------------------------------------

  // Fault injection: flips the stored checksum of up to `flips` currently
  // healthy backup copies held on `node` (kCorruptReplica) or master log
  // entries on `node` (kCorruptSegment), in key order so runs are replayable.
  // Returns how many copies were actually damaged.
  int CorruptReplica(int node, int flips);
  int CorruptSegment(int node, int flips);

  // Scrub support: verifies every copy of `key` against the expected checksum
  // and repairs divergent copies (from a healthy replica when one exists,
  // otherwise from the authoritative RSDS payload, which is always derivable
  // here). Unknown keys return an empty result — the scrubber's incremental
  // walk races evictions and crashes by design.
  struct ScrubResult {
    int corrupt_copies = 0;
    std::vector<int> corrupt_nodes;  // Where each corrupt copy lived.
  };
  ScrubResult ScrubObject(const std::string& key);

  // Keys in lexicographic order strictly after `after`, at most `limit` — the
  // scrubber's incremental cursor walk (deterministic across replays).
  std::vector<std::string> KeysAfter(const std::string& after, std::size_t limit) const;

  // Graceful drain of a node whose corruption rate crossed the scrubber's
  // threshold: like CrashNode, but the node's copies are still reachable, so
  // every object mastered there is re-mastered with an RSDS-verified checksum
  // and every backup copy is re-replicated verified — no data is lost to the
  // drain itself (only capacity exhaustion can drop objects). The node ends
  // !Alive until RestartNode. No-op on a dead node or the last alive node.
  RecoveryResult QuarantineNode(int node);

  // Assembled on demand from the metrics registry.
  ClusterStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

  // Total memory in use across alive nodes (Figure 10 series).
  Bytes TotalUsed() const;
  Bytes TotalCapacity() const;

 private:
  int CheckNode(int node) const;
  // Appends `size` bytes into some node's log, preferring `prefer` then the
  // node with the most free memory. Returns (node, entry) or an error; adds
  // cleaning time into `*cleaning_cost`.
  Result<std::pair<int, SegmentedLog::EntryId>> PlaceInLog(int prefer, Bytes size,
                                                           SimDuration* cleaning_cost);
  // Picks `count` backup nodes distinct from `master`, least-loaded-disk first.
  std::vector<int> PickBackups(int master, int count) const;
  void SyncUsed(int node) {
    nodes_[node].memory_used = logs_[node].live_bytes();
    // Capacity accounting: the log's Append/Clean enforce footprint <= capacity,
    // and live bytes never exceed the footprint.
    SIM_ASSERT(nodes_[node].memory_used <= logs_[node].footprint())
        << "; node " << node << " used=" << nodes_[node].memory_used
        << " footprint=" << logs_[node].footprint();
  }
  // Synchronous core of Write: frees any previous entry, places the payload in
  // a log, installs the object, and accumulates the simulated data-path cost.
  // `fingerprint` == 0 derives the payload fingerprint internally.
  Status ApplyWrite(int client_node, const std::string& key, Bytes size,
                    std::uint64_t version, ObjectClass object_class, bool dirty,
                    Checksum fingerprint, SimDuration* cost);
  // Flight + metric bookkeeping for a detected corrupt copy and (optionally)
  // its repair. `source` names where the good bits came from.
  void NoteCorruption(const std::string& key, int node, const char* where);
  void NoteRepair(const std::string& key, int node, const char* source);

  // Registry cells behind ClusterStats; bumped through cached pointers.
  struct Metrics {
    obs::Counter* reads = nullptr;
    obs::Counter* read_hits_local = nullptr;
    obs::Counter* read_hits_remote = nullptr;
    obs::Counter* read_misses = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* write_rejects = nullptr;
    obs::Counter* version_conflicts = nullptr;
    obs::Counter* transactions_committed = nullptr;
    obs::Counter* migrations = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* node_crashes = nullptr;
    obs::Counter* node_restarts = nullptr;
    obs::Counter* objects_recovered = nullptr;
    obs::Counter* objects_lost = nullptr;
    obs::Counter* checksum_failures = nullptr;
    obs::Counter* integrity_repairs = nullptr;
    obs::Counter* read_data_loss = nullptr;
    obs::Counter* nodes_quarantined = nullptr;
    obs::Series* recovery_ms = nullptr;  // Per-crash recovery makespan.
  };

  sim::EventLoop* loop_;
  ClusterOptions options_;
  Rng rng_;
  std::vector<NodeStats> nodes_;
  std::vector<SegmentedLog> logs_;
  // Ordered: CrashNode() recovery and KeysOn() iterate this map and their
  // visit order is event-visible (log packing, eviction order), so it must be
  // independent of hashing.
  std::map<std::string, CachedObject> objects_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }
  Metrics m_;
};

}  // namespace ofc::rc

#endif  // OFC_RAMCLOUD_CLUSTER_H_
