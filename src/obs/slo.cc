#include "src/obs/slo.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/obs/export_util.h"

namespace ofc::obs {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string CellKey(const std::string& name, const std::string& label) {
  std::string key = name;
  key.push_back('\0');
  key += label;
  return key;
}

// Applies a `key=val` option field; returns false on unknown key / bad value.
bool ApplyOption(const std::string& field, SloSpec* spec, std::string* error) {
  const std::size_t eq = field.find('=');
  if (eq == std::string::npos) {
    *error = "expected key=val option, got '" + field + "'";
    return false;
  }
  const std::string key = field.substr(0, eq);
  double value = 0.0;
  if (!ParseDouble(field.substr(eq + 1), &value) || value <= 0.0) {
    *error = "bad value in option '" + field + "'";
    return false;
  }
  if (key == "fast") {
    spec->fast_window_s = value;
  } else if (key == "slow") {
    spec->slow_window_s = value;
  } else if (key == "fastburn") {
    spec->fast_burn_threshold = value;
  } else if (key == "slowburn") {
    spec->slow_burn_threshold = value;
  } else {
    *error = "unknown option '" + key + "'";
    return false;
  }
  return true;
}

bool ParseOneSpec(const std::string& entry, std::size_t index, SloSpec* spec,
                  std::string* error) {
  std::vector<std::string> fields = Split(entry, ':');
  // Optional `name=` prefix rides in the first field.
  std::size_t eq = fields[0].find('=');
  if (eq != std::string::npos) {
    spec->name = fields[0].substr(0, eq);
    fields[0] = fields[0].substr(eq + 1);
  } else {
    spec->name = "slo" + std::to_string(index + 1);
  }
  if (spec->name.empty()) {
    *error = "empty SLO name in '" + entry + "'";
    return false;
  }
  std::size_t next = 0;
  if (fields[0] == "lat") {
    spec->type = SloSpec::Type::kLatency;
    if (fields.size() < 4) {
      *error = "latency SLO needs lat:<series>:p<Q>:<target_ms> in '" + entry + "'";
      return false;
    }
    spec->series = fields[1];
    const std::string& q = fields[2];
    double pct = 0.0;
    if (q.size() < 2 || q[0] != 'p' || !ParseDouble(q.substr(1), &pct) || pct <= 0.0 ||
        pct >= 100.0) {
      *error = "bad percentile '" + q + "' in '" + entry + "' (want e.g. p99)";
      return false;
    }
    spec->quantile = pct / 100.0;
    spec->budget = 1.0 - spec->quantile;
    if (!ParseDouble(fields[3], &spec->target_ms) || spec->target_ms < 0.0) {
      *error = "bad latency target '" + fields[3] + "' in '" + entry + "'";
      return false;
    }
    next = 4;
  } else if (fields[0] == "rate") {
    spec->type = SloSpec::Type::kRate;
    if (fields.size() < 3) {
      *error = "rate SLO needs rate:<num>/<den>:<budget> in '" + entry + "'";
      return false;
    }
    const std::size_t slash = fields[1].find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 == fields[1].size()) {
      *error = "rate SLO needs <numerator>/<denominator> in '" + entry + "'";
      return false;
    }
    spec->numerator = fields[1].substr(0, slash);
    spec->denominator = fields[1].substr(slash + 1);
    if (!ParseDouble(fields[2], &spec->budget) || spec->budget <= 0.0 || spec->budget > 1.0) {
      *error = "bad budget '" + fields[2] + "' in '" + entry + "' (want (0, 1])";
      return false;
    }
    next = 3;
  } else {
    *error = "unknown SLO type '" + fields[0] + "' in '" + entry + "' (want lat|rate)";
    return false;
  }
  for (std::size_t i = next; i < fields.size(); ++i) {
    if (!ApplyOption(fields[i], spec, error)) {
      return false;
    }
  }
  if (spec->fast_window_s > spec->slow_window_s) {
    *error = "fast window exceeds slow window in '" + entry + "'";
    return false;
  }
  return true;
}

}  // namespace

bool ParseSloSpecs(const std::string& text, std::vector<SloSpec>* specs, std::string* error) {
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), '\n', ';');
  for (const std::string& raw : Split(normalized, ';')) {
    const std::string entry = Trim(raw);
    if (entry.empty() || entry[0] == '#') {
      continue;
    }
    SloSpec spec;
    if (!ParseOneSpec(entry, specs->size(), &spec, error)) {
      return false;
    }
    specs->push_back(std::move(spec));
  }
  return true;
}

SloMonitor::SloMonitor(MetricsRegistry* registry, TraceRecorder* trace,
                       std::vector<SloSpec> specs)
    : registry_(registry), trace_(trace), specs_(std::move(specs)) {
  states_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const std::string& name = specs_[i].name;
    states_[i].alerts_cell = registry_->GetCounter("ofc.slo.alerts", name);
    states_[i].burn_fast_cell = registry_->GetGauge("ofc.slo.burn_fast", name);
    states_[i].burn_slow_cell = registry_->GetGauge("ofc.slo.burn_slow", name);
    states_[i].firing_cell = registry_->GetGauge("ofc.slo.firing", name);
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->SetProcessName(kPidSlo, "slo");
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      trace_->SetThreadName(kPidSlo, i, specs_[i].name);
    }
  }
}

SloMonitor::WindowSample SloMonitor::Collect(const SloSpec& spec, SloState* state,
                                             SimTime start, SimTime end) {
  WindowSample window;
  window.start = start;
  window.end = end;
  if (spec.type == SloSpec::Type::kLatency) {
    // Bad = stored observations above target that arrived since the previous
    // evaluation, across every label of the series family. Once a cell hits
    // its stored-sample cap the SLO goes quiet for that cell (no new samples
    // to judge) — runs long enough to cap should raise the cap, not the SLO.
    registry_->VisitSeries([&](const std::string& name, const std::string& label,
                               const Series& cell) {
      if (name != spec.series) {
        return;
      }
      std::size_t& prev = state->prev_stored[CellKey(name, label)];
      const std::vector<double>& stored = cell.samples().values();
      if (stored.size() < prev) {
        prev = 0;  // Reset: re-judge everything since.
      }
      for (std::size_t i = prev; i < stored.size(); ++i) {
        window.total += 1.0;
        if (stored[i] > spec.target_ms) {
          window.bad += 1.0;
        }
      }
      prev = stored.size();
    });
  } else {
    auto delta = [&](const std::string& family) {
      const std::uint64_t cur = registry_->CounterTotal(family);
      std::uint64_t& prev = state->prev_counter[family];
      const std::uint64_t d = cur >= prev ? cur - prev : cur;
      prev = cur;
      return static_cast<double>(d);
    };
    window.bad = delta(spec.numerator);
    window.total = delta(spec.denominator);
  }
  return window;
}

double SloMonitor::BurnOver(const SloState& state, double window_s, double budget,
                            SimTime now) {
  const SimTime horizon =
      now > static_cast<SimTime>(window_s * 1e6) ? now - static_cast<SimTime>(window_s * 1e6)
                                                 : 0;
  double bad = 0.0;
  double total = 0.0;
  for (auto it = state.windows.rbegin(); it != state.windows.rend(); ++it) {
    if (it->end <= horizon) {
      break;
    }
    bad += it->bad;
    total += it->total;
  }
  if (total <= 0.0 || budget <= 0.0) {
    return 0.0;
  }
  return (bad / total) / budget;
}

void SloMonitor::Evaluate(SimTime now) {
  const SimTime start = evaluated_once_ ? last_eval_ : 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    SloState& state = states_[i];
    state.windows.push_back(Collect(spec, &state, start, now));
    // Trim history beyond the slow lookback; nothing ever reads past it.
    const SimTime keep = static_cast<SimTime>(spec.slow_window_s * 1e6);
    while (!state.windows.empty() && state.windows.front().end + keep < now) {
      state.windows.pop_front();
    }
    state.fast_burn = BurnOver(state, spec.fast_window_s, spec.budget, now);
    state.slow_burn = BurnOver(state, spec.slow_window_s, spec.budget, now);
    state.worst_fast_burn = std::max(state.worst_fast_burn, state.fast_burn);
    state.worst_slow_burn = std::max(state.worst_slow_burn, state.slow_burn);
    state.burn_fast_cell->Set(state.fast_burn);
    state.burn_slow_cell->Set(state.slow_burn);

    const bool should_fire = state.fast_burn >= spec.fast_burn_threshold &&
                             state.slow_burn >= spec.slow_burn_threshold;
    if (should_fire && !state.firing) {
      state.firing = true;
      ++state.fired_count;
      ++*state.alerts_cell;
      state.active_alert = alerts_.size();
      SloAlert alert;
      alert.slo = spec.name;
      alert.fired_at = now;
      alert.fast_burn = state.fast_burn;
      alert.slow_burn = state.slow_burn;
      alerts_.push_back(std::move(alert));
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Instant("slo-fire", "slo", now, kPidSlo, i,
                        {{"slo", spec.name},
                         {"fast_burn", JsonNumber(state.fast_burn)},
                         {"slow_burn", JsonNumber(state.slow_burn)}});
      }
    } else if (!should_fire && state.firing) {
      state.firing = false;
      alerts_[state.active_alert].resolved_at = now;
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Instant("slo-clear", "slo", now, kPidSlo, i, {{"slo", spec.name}});
      }
    }
    state.firing_cell->Set(state.firing ? 1.0 : 0.0);
  }
  last_eval_ = now;
  evaluated_once_ = true;
}

double SloMonitor::worst_burn() const {
  double worst = 0.0;
  for (const SloState& state : states_) {
    worst = std::max(worst, state.worst_slow_burn);
  }
  return worst;
}

std::string SloMonitor::HealthJson(SimTime now) const {
  std::string out = "{\"sim_time_us\": " + std::to_string(now);
  out += ", \"worst_burn\": " + JsonNumber(worst_burn());
  out += ", \"alerts_fired\": " + std::to_string(alerts_.size());
  out += ", \"slos\": [";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    const SloState& state = states_[i];
    if (i != 0) {
      out += ",";
    }
    out += "\n  {\"name\": \"" + JsonEscape(spec.name) + "\"";
    if (spec.type == SloSpec::Type::kLatency) {
      out += ", \"type\": \"latency\", \"series\": \"" + JsonEscape(spec.series) + "\"";
      out += ", \"quantile\": " + JsonNumber(spec.quantile);
      out += ", \"target_ms\": " + JsonNumber(spec.target_ms);
    } else {
      out += ", \"type\": \"rate\", \"numerator\": \"" + JsonEscape(spec.numerator) + "\"";
      out += ", \"denominator\": \"" + JsonEscape(spec.denominator) + "\"";
    }
    out += ", \"budget\": " + JsonNumber(spec.budget);
    out += ", \"fast_burn\": " + JsonNumber(state.fast_burn);
    out += ", \"slow_burn\": " + JsonNumber(state.slow_burn);
    out += ", \"worst_fast_burn\": " + JsonNumber(state.worst_fast_burn);
    out += ", \"worst_slow_burn\": " + JsonNumber(state.worst_slow_burn);
    out += ", \"alerts\": " + std::to_string(state.fired_count);
    out += ", \"firing\": ";
    out += state.firing ? "true" : "false";
    out += "}";
  }
  out += "\n], \"alerts\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const SloAlert& alert = alerts_[i];
    if (i != 0) {
      out += ",";
    }
    out += "\n  {\"slo\": \"" + JsonEscape(alert.slo) + "\"";
    out += ", \"fired_at_us\": " + std::to_string(alert.fired_at);
    out += ", \"resolved_at_us\": " + std::to_string(alert.resolved_at);
    out += ", \"fast_burn\": " + JsonNumber(alert.fast_burn);
    out += ", \"slow_burn\": " + JsonNumber(alert.slow_burn) + "}";
  }
  out += "\n], \"breaker\": {\"opens\": " +
         std::to_string(registry_->CounterTotal("ofc.breaker.opens"));
  out += ", \"open_time_us\": " + JsonNumber(registry_->GaugeValue("ofc.breaker.open_time_us"));
  out += "}, \"shed\": {\"total\": " +
         std::to_string(registry_->CounterTotal("ofc.overload.shed"));
  out += ", \"queue_full\": " +
         std::to_string(registry_->CounterValue("ofc.overload.shed", "queue_full"));
  out += ", \"deadline\": " +
         std::to_string(registry_->CounterValue("ofc.overload.shed", "deadline"));
  out += "}, \"invocations\": {\"total\": " +
         std::to_string(registry_->CounterTotal("ofc.platform.invocations"));
  out += ", \"failed\": " +
         std::to_string(registry_->CounterTotal("ofc.platform.failed_invocations"));
  out += "}}\n";
  return out;
}

}  // namespace ofc::obs
