#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <utility>

#include "src/obs/export_util.h"

namespace ofc::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSubmit:
      return "submit";
    case FlightEventKind::kQueue:
      return "queue";
    case FlightEventKind::kShed:
      return "shed";
    case FlightEventKind::kColdStart:
      return "cold_start";
    case FlightEventKind::kWarmStart:
      return "warm_start";
    case FlightEventKind::kExtract:
      return "extract";
    case FlightEventKind::kTransform:
      return "transform";
    case FlightEventKind::kLoad:
      return "load";
    case FlightEventKind::kOomRescue:
      return "oom_rescue";
    case FlightEventKind::kOomKill:
      return "oom_kill";
    case FlightEventKind::kRetry:
      return "retry";
    case FlightEventKind::kComplete:
      return "complete";
    case FlightEventKind::kFail:
      return "fail";
    case FlightEventKind::kWorkerCrash:
      return "worker_crash";
    case FlightEventKind::kWorkerRestore:
      return "worker_restore";
    case FlightEventKind::kPipelineStart:
      return "pipeline_start";
    case FlightEventKind::kPipelineEnd:
      return "pipeline_end";
    case FlightEventKind::kCacheHit:
      return "cache_hit";
    case FlightEventKind::kCacheMiss:
      return "cache_miss";
    case FlightEventKind::kCacheAdmit:
      return "cache_admit";
    case FlightEventKind::kCacheWrite:
      return "cache_write";
    case FlightEventKind::kWriteFallback:
      return "write_fallback";
    case FlightEventKind::kPersistorDispatch:
      return "persistor_dispatch";
    case FlightEventKind::kPersistorDone:
      return "persistor_done";
    case FlightEventKind::kPersistorRetry:
      return "persistor_retry";
    case FlightEventKind::kPersistorConflict:
      return "persistor_conflict";
    case FlightEventKind::kWriteback:
      return "writeback";
    case FlightEventKind::kBreakerOpen:
      return "breaker_open";
    case FlightEventKind::kBreakerClose:
      return "breaker_close";
    case FlightEventKind::kScaleUp:
      return "scale_up";
    case FlightEventKind::kScaleDown:
      return "scale_down";
    case FlightEventKind::kMigration:
      return "migration";
    case FlightEventKind::kEvict:
      return "evict";
    case FlightEventKind::kPressureEnter:
      return "pressure_enter";
    case FlightEventKind::kPressureExit:
      return "pressure_exit";
    case FlightEventKind::kFaultInject:
      return "fault_inject";
    case FlightEventKind::kFaultHeal:
      return "fault_heal";
    case FlightEventKind::kNodeCrash:
      return "node_crash";
    case FlightEventKind::kNodeRestart:
      return "node_restart";
    case FlightEventKind::kNodeRecovered:
      return "node_recovered";
    case FlightEventKind::kCorruptionDetected:
      return "corruption_detected";
    case FlightEventKind::kCorruptionRepaired:
      return "corruption_repaired";
    case FlightEventKind::kNodeQuarantined:
      return "node_quarantined";
  }
  return "unknown";
}

void FlightRecorder::set_capacity(std::size_t n) {
  options_.capacity = n == 0 ? 1 : n;
  if (ring_.size() <= options_.capacity && start_ == 0) {
    return;  // Still growing in append order; nothing to rearrange.
  }
  // Linearize the newest `capacity` records into a fresh buffer.
  const std::size_t keep = ring_.size() < options_.capacity ? ring_.size() : options_.capacity;
  std::vector<FlightEvent> linear;
  linear.reserve(keep);
  for (std::size_t i = ring_.size() - keep; i < ring_.size(); ++i) {
    linear.push_back(std::move(ring_[(start_ + i) % ring_.size()]));
  }
  ring_ = std::move(linear);
  start_ = 0;
}

void FlightRecorder::Record(SimTime time, FlightEventKind kind, std::uint64_t invocation_id,
                            std::uint64_t parent_id, std::int32_t worker, std::string subject,
                            std::string detail) {
  if (!options_.enabled) {
    return;
  }
  FlightEvent* ev;
  if (ring_.size() < options_.capacity) {
    if (ring_.size() == ring_.capacity()) {
      // Grow geometrically but never past the ring bound, so the buffer ends
      // at exactly `capacity` slots with no overshoot to trim.
      std::size_t want = ring_.capacity() == 0 ? 16 : ring_.capacity() * 2;
      ring_.reserve(want < options_.capacity ? want : options_.capacity);
    }
    ev = &ring_.emplace_back();
  } else {
    ev = &ring_[start_];  // Overwrite the oldest record in place.
    start_ = (start_ + 1) % ring_.size();
  }
  ev->seq = next_seq_++;
  ev->time = time;
  ev->kind = kind;
  ev->invocation_id = invocation_id;
  ev->parent_id = parent_id;
  ev->worker = worker;
  ev->subject = std::move(subject);
  ev->detail = std::move(detail);
}

std::vector<const FlightEvent*> FlightRecorder::ChainFor(std::uint64_t invocation_id) const {
  std::vector<const FlightEvent*> chain;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const FlightEvent& ev = at(i);
    if (ev.invocation_id == invocation_id ||
        (ev.parent_id == invocation_id && ev.parent_id != 0)) {
      chain.push_back(&ev);
    }
  }
  return chain;
}

std::string FlightRecorder::ToJson(const std::string& reason) const {
  std::string out = "{";
  if (!reason.empty()) {
    out += "\"reason\": \"" + JsonEscape(reason) + "\", ";
  }
  out += "\"total_recorded\": " + std::to_string(next_seq_);
  out += ", \"evicted\": " + std::to_string(evicted());
  out += ", \"events\": [";
  bool first = true;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const FlightEvent& ev = at(i);
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"seq\": " + std::to_string(ev.seq);
    out += ", \"t_us\": " + std::to_string(ev.time);
    out += ", \"kind\": \"";
    out += FlightEventKindName(ev.kind);
    out += "\"";
    if (ev.invocation_id != 0) {
      out += ", \"inv\": " + std::to_string(ev.invocation_id);
    }
    if (ev.parent_id != 0) {
      out += ", \"parent\": " + std::to_string(ev.parent_id);
    }
    if (ev.worker >= 0) {
      out += ", \"worker\": " + std::to_string(ev.worker);
    }
    if (!ev.subject.empty()) {
      out += ", \"subject\": \"" + JsonEscape(ev.subject) + "\"";
    }
    if (!ev.detail.empty()) {
      out += ", \"detail\": \"" + JsonEscape(ev.detail) + "\"";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool FlightRecorder::WriteJson(const std::string& path, const std::string& reason) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson(reason);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

void FlightRecorder::Clear() {
  ring_.clear();  // Keeps the buffer: a cleared recorder is about to refill.
  start_ = 0;
  next_seq_ = 0;
}

}  // namespace ofc::obs
