// TraceRecorder: per-invocation lifecycle tracing on the simulated clock.
//
// Components emit spans (Chrome trace-event "X" complete events) and instants
// ("i" events) stamped with sim::EventLoop time; the recorder serializes them
// as Chrome trace-event JSON, so a run opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Recording is OFF by default — every emit site guards on `enabled()` (one
// branch), so tier-1 runtimes are unaffected. When on, per-invocation spans can
// be sampled (`sample_period = N` records every Nth invocation id) and the
// total event count is hard-capped so a runaway run cannot exhaust memory.
//
// Track layout convention (pid/tid pairs shared by the instrumented layers):
//   * kPidInvocations — tid = invocation id; submit/queue/startup/E/T/L spans;
//   * kPidPipelines   — tid = pipeline id; whole-pipeline spans;
//   * kPidCache       — tid = worker/node id; CacheAgent scaling + migrations;
//   * kPidStore       — tid = 0; persistor write-backs against the RSDS;
//   * kPidFaults      — tid = 0; injected faults and heals (src/fault/);
//   * kPidSlo         — tid = SLO index; burn-rate alert fire/clear instants.
#ifndef OFC_OBS_TRACE_H_
#define OFC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace ofc::obs {

inline constexpr int kPidInvocations = 1;
inline constexpr int kPidPipelines = 2;
inline constexpr int kPidCache = 3;
inline constexpr int kPidStore = 4;
inline constexpr int kPidFaults = 5;
inline constexpr int kPidSlo = 6;

struct TraceOptions {
  bool enabled = false;
  // Record spans for invocation/pipeline ids where id % sample_period == 0.
  // 1 = every invocation; control-plane events (scaling, migrations,
  // persistors) are recorded whenever tracing is enabled.
  std::uint64_t sample_period = 1;
  // Hard cap on recorded events; further events are counted as dropped.
  std::size_t max_events = 1u << 20;
};

class TraceRecorder {
 public:
  // Event arguments, rendered as a JSON string map under "args".
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit TraceRecorder(TraceOptions options = {}) : options_(options) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return options_.enabled; }
  void set_enabled(bool on) { options_.enabled = on; }
  void set_sample_period(std::uint64_t period) {
    options_.sample_period = period == 0 ? 1 : period;
  }
  const TraceOptions& options() const { return options_; }

  // Per-invocation sampling decision; deterministic in the id.
  bool Sampled(std::uint64_t id) const {
    return options_.enabled && (options_.sample_period <= 1 || id % options_.sample_period == 0);
  }

  // Perfetto/chrome display names for the track-layout metadata.
  void SetProcessName(int pid, const std::string& name);
  void SetThreadName(int pid, std::uint64_t tid, const std::string& name);

  // Complete event ("X"): a span of `duration` starting at `start`.
  void Span(const std::string& name, const std::string& category, SimTime start,
            SimDuration duration, int pid, std::uint64_t tid, Args args = {});

  // Instant event ("i", thread scope).
  void Instant(const std::string& name, const std::string& category, SimTime ts, int pid,
               std::uint64_t tid, Args args = {});

  // Counter event ("C"): a time series rendered as a stacked chart.
  void CounterSample(const std::string& name, SimTime ts, int pid, double value);

  std::size_t num_events() const { return events_.size(); }
  std::size_t num_dropped() const { return dropped_; }
  void Clear();

  // Chrome trace-event JSON: {"displayTimeUnit": "ms", "traceEvents": [...]},
  // events sorted by (ts, duration descending) so enclosing spans precede their
  // children and timestamps are monotonically non-decreasing.
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

 private:
  struct Event {
    char phase = 'X';
    std::string name;
    std::string category;
    SimTime ts = 0;
    SimDuration duration = 0;
    int pid = 0;
    std::uint64_t tid = 0;
    double value = 0.0;  // "C" events only.
    Args args;
  };

  bool Admit();

  TraceOptions options_;
  std::vector<Event> events_;
  std::vector<Event> metadata_;  // "M" events, emitted before the sorted body.
  std::size_t dropped_ = 0;
};

}  // namespace ofc::obs

#endif  // OFC_OBS_TRACE_H_
