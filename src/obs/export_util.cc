#include "src/obs/export_util.h"

#include <cstdint>
#include <cstdio>

namespace ofc::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (v != v || v > 1e300 || v < -1e300) {
    return "0";
  }
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && v < 9.2e18 && v > -9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    return s;
  }
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace ofc::obs
