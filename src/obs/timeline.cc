#include "src/obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/export_util.h"

namespace ofc::obs {

namespace {

std::string CellKey(const std::string& name, const std::string& label) {
  std::string key = name;
  key.push_back('\0');
  key += label;
  return key;
}

// Percentile over an unsorted slice, matching Samples::Percentile semantics
// (linear interpolation between closest ranks; empty -> 0).
double SlicePercentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

TimelineRecorder::TimelineRecorder(const MetricsRegistry* registry, TimelineOptions options)
    : registry_(registry), options_(options) {
  if (options_.max_windows == 0) {
    options_.max_windows = 1;
  }
}

void TimelineRecorder::Scrape(SimTime now) {
  TimelineWindow window;
  window.index = next_index_++;
  window.start = scraped_once_ ? last_scrape_ : 0;
  window.end = now;
  const double window_s =
      window.end > window.start ? static_cast<double>(window.end - window.start) / 1e6 : 0.0;

  registry_->VisitCounters([&](const std::string& name, const std::string& label,
                               const Counter& cell) {
    TimelineCounter out;
    out.name = name;
    out.label = label;
    out.value = cell.value();
    PrevCounter& prev = prev_counters_[CellKey(name, label)];
    // Reset-safe: a counter that moved backwards was Reset(); everything since
    // the reset counts as this window's delta.
    out.delta = out.value >= prev.value ? out.value - prev.value : out.value;
    out.rate_per_s = window_s > 0.0 ? static_cast<double>(out.delta) / window_s : 0.0;
    prev.value = out.value;
    window.counters.push_back(std::move(out));
  });

  registry_->VisitGauges(
      [&](const std::string& name, const std::string& label, const Gauge& cell) {
        TimelineGauge out;
        out.name = name;
        out.label = label;
        out.value = cell.value();
        window.gauges.push_back(std::move(out));
      });

  registry_->VisitSeries([&](const std::string& name, const std::string& label,
                             const Series& cell) {
    TimelineSeries out;
    out.name = name;
    out.label = label;
    out.count = cell.count();
    PrevSeries& prev = prev_series_[CellKey(name, label)];
    const bool reset = cell.count() < prev.count;
    const std::size_t prev_count = reset ? 0 : prev.count;
    const double prev_sum = reset ? 0.0 : prev.sum;
    const std::size_t prev_stored = reset ? 0 : prev.stored_count;
    out.delta = static_cast<std::uint64_t>(cell.count() - prev_count);
    if (out.delta > 0) {
      out.interval_mean = (cell.sum() - prev_sum) / static_cast<double>(out.delta);
    }
    const std::vector<double>& stored = cell.samples().values();
    if (stored.size() > prev_stored) {
      std::vector<double> slice(stored.begin() + static_cast<std::ptrdiff_t>(prev_stored),
                                stored.end());
      out.interval_p50 = SlicePercentile(slice, 0.50);
      out.interval_p95 = SlicePercentile(slice, 0.95);
      out.interval_p99 = SlicePercentile(std::move(slice), 0.99);
    }
    out.run_p50 = cell.samples().Percentile(0.50);
    out.run_p99 = cell.samples().Percentile(0.99);
    prev.count = cell.count();
    prev.sum = cell.sum();
    prev.stored_count = stored.size();
    window.series.push_back(std::move(out));
  });

  last_scrape_ = now;
  scraped_once_ = true;
  if (windows_.size() >= options_.max_windows) {
    windows_.pop_front();
  }
  windows_.push_back(std::move(window));
}

std::uint64_t TimelineRecorder::CounterDelta(std::uint64_t window_index, const std::string& name,
                                             const std::string& label) const {
  for (const TimelineWindow& window : windows_) {
    if (window.index != window_index) {
      continue;
    }
    for (const TimelineCounter& cell : window.counters) {
      if (cell.name == name && cell.label == label) {
        return cell.delta;
      }
    }
  }
  return 0;
}

std::string TimelineRecorder::ToJson() const {
  std::string out = "{\"total_windows\": " + std::to_string(next_index_);
  out += ", \"evicted\": " + std::to_string(evicted());
  out += ", \"windows\": [";
  bool first_window = true;
  for (const TimelineWindow& window : windows_) {
    if (!first_window) {
      out += ",";
    }
    first_window = false;
    out += "\n{\"index\": " + std::to_string(window.index);
    out += ", \"start_us\": " + std::to_string(window.start);
    out += ", \"end_us\": " + std::to_string(window.end);
    out += ", \"counters\": [";
    bool first = true;
    for (const TimelineCounter& cell : window.counters) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "{\"name\": \"" + JsonEscape(cell.name) + "\"";
      if (!cell.label.empty()) {
        out += ", \"label\": \"" + JsonEscape(cell.label) + "\"";
      }
      out += ", \"value\": " + std::to_string(cell.value);
      out += ", \"delta\": " + std::to_string(cell.delta);
      out += ", \"rate_per_s\": " + JsonNumber(cell.rate_per_s) + "}";
    }
    out += "], \"gauges\": [";
    first = true;
    for (const TimelineGauge& cell : window.gauges) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "{\"name\": \"" + JsonEscape(cell.name) + "\"";
      if (!cell.label.empty()) {
        out += ", \"label\": \"" + JsonEscape(cell.label) + "\"";
      }
      out += ", \"value\": " + JsonNumber(cell.value) + "}";
    }
    out += "], \"series\": [";
    first = true;
    for (const TimelineSeries& cell : window.series) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "{\"name\": \"" + JsonEscape(cell.name) + "\"";
      if (!cell.label.empty()) {
        out += ", \"label\": \"" + JsonEscape(cell.label) + "\"";
      }
      out += ", \"count\": " + std::to_string(cell.count);
      out += ", \"delta\": " + std::to_string(cell.delta);
      out += ", \"interval_mean\": " + JsonNumber(cell.interval_mean);
      out += ", \"interval_p50\": " + JsonNumber(cell.interval_p50);
      out += ", \"interval_p95\": " + JsonNumber(cell.interval_p95);
      out += ", \"interval_p99\": " + JsonNumber(cell.interval_p99);
      out += ", \"run_p50\": " + JsonNumber(cell.run_p50);
      out += ", \"run_p99\": " + JsonNumber(cell.run_p99) + "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool TimelineRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

}  // namespace ofc::obs
