// SloMonitor: declarative SLOs with multi-window burn-rate alerting.
//
// An SLO reduces to an error budget: a latency SLO "p99 of
// ofc.platform.total_ms <= 250ms" budgets 1% of requests over target; a rate
// SLO "ofc.overload.shed / ofc.platform.invocations <= 0.5%" budgets the ratio
// directly. At every telemetry scrape the monitor folds the scrape interval
// into per-SLO (bad, total) windows and computes burn rates — the fraction of
// budget consumed per unit time, normalized so burn = 1 means "exactly on
// budget" — over a fast and a slow lookback window. An alert fires only when
// BOTH exceed their thresholds (the Google SRE multi-window multi-burn-rate
// recipe: the fast window gives responsiveness, the slow window suppresses
// blips), and clears when either falls back under.
//
// Spec grammar (CLI `--slo=SPEC;SPEC;...` or `--slo=@file`, one spec per line,
// `#` comments):
//   [name=]lat:<series>:p<Q>:<target_ms>[:fast=S][:slow=S][:fastburn=F][:slowburn=F]
//   [name=]rate:<numerator>/<denominator>:<budget>[:fast=S][:slow=S][...]
// e.g.  warm=lat:ofc.platform.total_ms:p99:250:fast=60:slow=600
//       shed=rate:ofc.overload.shed/ofc.platform.invocations:0.005
// Defaults: fast=60s slow=600s fastburn=14 slowburn=6.
//
// Outputs: `ofc.slo.*` metric cells (created eagerly at construction so
// exports are stable whether or not alerts fire), instants on the kPidSlo
// trace track, structured alert records, and an end-of-run HealthJson summary
// (worst burns, alerts fired, breaker open time, shed totals).
#ifndef OFC_OBS_SLO_H_
#define OFC_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ofc::obs {

struct SloSpec {
  enum class Type { kLatency, kRate };
  std::string name;
  Type type = Type::kLatency;
  // kLatency: observations of `series` above `target_ms` spend budget 1 - q.
  std::string series;
  double quantile = 0.99;
  double target_ms = 0.0;
  // kRate: counter-delta ratio numerator/denominator against `budget`.
  std::string numerator;
  std::string denominator;
  double budget = 0.01;  // For kLatency this is derived as 1 - quantile.
  // Burn-rate windows and thresholds.
  double fast_window_s = 60.0;
  double slow_window_s = 600.0;
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;
};

// Parses `;`/newline-separated specs; lines starting with '#' are skipped.
// Returns false and sets *error on malformed input.
bool ParseSloSpecs(const std::string& text, std::vector<SloSpec>* specs, std::string* error);

struct SloAlert {
  std::string slo;
  SimTime fired_at = 0;
  SimTime resolved_at = 0;  // 0 = still firing at end of run.
  double fast_burn = 0.0;   // Burn rates at fire time.
  double slow_burn = 0.0;
};

class SloMonitor {
 public:
  // `registry` must outlive the monitor; `trace` may be null. Metric cells for
  // every spec are created here so snapshot layout does not depend on whether
  // alerts fire.
  SloMonitor(MetricsRegistry* registry, TraceRecorder* trace, std::vector<SloSpec> specs);
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // Folds the interval since the previous call into each SLO's windows and
  // re-evaluates burn rates + alert state. Call once per telemetry scrape,
  // before the timeline scrape so `ofc.slo.*` gauges land in the same window.
  void Evaluate(SimTime now);

  const std::vector<SloSpec>& specs() const { return specs_; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  std::uint64_t alerts_fired() const { return alerts_.size(); }
  // Worst slow-window burn observed across all SLOs and scrapes.
  double worst_burn() const;

  // End-of-run health summary: per-SLO burn peaks and alert counts, alert
  // records, plus platform-health counters (breaker open time, shed totals).
  std::string HealthJson(SimTime now) const;

 private:
  struct WindowSample {
    SimTime start = 0;
    SimTime end = 0;
    double bad = 0.0;
    double total = 0.0;
  };
  struct SloState {
    std::deque<WindowSample> windows;
    // Per-cell progress markers ("name\0label" keyed) for interval extraction.
    std::map<std::string, std::uint64_t> prev_counter;
    std::map<std::string, std::size_t> prev_stored;
    bool firing = false;
    std::size_t active_alert = 0;  // Index into alerts_ while firing.
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    double worst_fast_burn = 0.0;
    double worst_slow_burn = 0.0;
    std::uint64_t fired_count = 0;
    // Eagerly created cells.
    Counter* alerts_cell = nullptr;
    Gauge* burn_fast_cell = nullptr;
    Gauge* burn_slow_cell = nullptr;
    Gauge* firing_cell = nullptr;
  };

  WindowSample Collect(const SloSpec& spec, SloState* state, SimTime start, SimTime end);
  static double BurnOver(const SloState& state, double window_s, double budget, SimTime now);

  MetricsRegistry* registry_;
  TraceRecorder* trace_;
  std::vector<SloSpec> specs_;
  std::vector<SloState> states_;
  std::vector<SloAlert> alerts_;
  SimTime last_eval_ = 0;
  bool evaluated_once_ = false;
};

}  // namespace ofc::obs

#endif  // OFC_OBS_SLO_H_
