// MetricsRegistry: the unified metrics layer every component reports through.
//
// Components obtain named cells (counters, gauges, distribution series) from a
// shared registry at construction and bump them on the hot path with a plain
// pointer dereference — no locking (the simulator is single-threaded) and no
// string lookups after the first access. The legacy per-component stats structs
// (ProxyStats, CacheScalingStats, PlatformStats, OfcPredictionStats, ...) are
// retained as *views* assembled from the registry cells, so existing tests and
// benches keep their accessor APIs while the registry stays the single source
// of truth — Table 2 output and the machine-readable exports can never drift.
//
// Naming scheme: `ofc.<component>.<name>` (e.g. `ofc.proxy.cache_hits`), with
// an optional label for per-function / per-worker breakdowns (rendered as
// `name{label}` in the CSV export).
//
// Exporters: SnapshotJson() (machine-readable, one object per metric family)
// and SnapshotCsv() (one row per cell). Distribution series reuse
// RunningStat/Samples from src/common/stats.h and report count/mean/min/max
// plus p50/p95/p99.
#ifndef OFC_OBS_METRICS_H_
#define OFC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/common/units.h"

namespace ofc::obs {

// Monotonically increasing event count.
class Counter {
 public:
  Counter& operator++() {
    ++value_;
    return *this;
  }
  void Add(std::uint64_t n) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time value (cache capacity, cumulative simulated time, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Distribution of observations (latencies, sizes): Welford summary plus stored
// samples for exact percentiles. Sample storage is capped so long traced runs
// stay bounded; the RunningStat summary covers every observation regardless.
class Series {
 public:
  void Observe(double v) {
    running_.Add(v);
    if (samples_.count() < kMaxStoredSamples) {
      samples_.Add(v);
    }
  }
  std::size_t count() const { return running_.count(); }
  double sum() const { return running_.sum(); }
  const RunningStat& running() const { return running_; }
  const Samples& samples() const { return samples_; }
  // Bucketed rendering over [lo, hi) for ASCII output (reuses common Histogram).
  Histogram ToHistogram(double lo, double hi, std::size_t buckets) const;
  void Reset() {
    running_ = RunningStat();
    samples_ = Samples();
  }

 private:
  static constexpr std::size_t kMaxStoredSamples = 1 << 16;
  RunningStat running_;
  Samples samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create; the returned pointer is stable for the registry's lifetime.
  // A family's kind is fixed by its first accessor (counter/gauge/series); the
  // label distinguishes cells within a family ("" = the unlabeled cell).
  Counter* GetCounter(const std::string& name, const std::string& label = "");
  Gauge* GetGauge(const std::string& name, const std::string& label = "");
  Series* GetSeries(const std::string& name, const std::string& label = "");

  // ---- Read-side queries (benches, tests, views) -------------------------------

  // Value of one cell; 0 when the cell does not exist.
  std::uint64_t CounterValue(const std::string& name, const std::string& label = "") const;
  double GaugeValue(const std::string& name, const std::string& label = "") const;
  const Series* FindSeries(const std::string& name, const std::string& label = "") const;
  // Sum across all labels of a counter family.
  std::uint64_t CounterTotal(const std::string& name) const;
  std::size_t NumFamilies() const { return families_.size(); }

  // ---- Visitation (timeline scrapes) ---------------------------------------------
  //
  // Invokes the callback once per cell, in deterministic (family name, label)
  // order — the registry's own map order — so scrape output is reproducible.
  void VisitCounters(
      const std::function<void(const std::string& name, const std::string& label,
                               const Counter& cell)>& fn) const;
  void VisitGauges(const std::function<void(const std::string& name, const std::string& label,
                                            const Gauge& cell)>& fn) const;
  void VisitSeries(const std::function<void(const std::string& name, const std::string& label,
                                            const Series& cell)>& fn) const;

  // ---- Exporters ---------------------------------------------------------------

  // {"sim_time_us": N, "metrics": [{"name": ..., "type": ..., "cells": [...]}]}
  std::string SnapshotJson(SimTime now = 0) const;
  // Header row, then one row per cell:
  //   name,type,label,value,count,mean,min,max,p50,p95,p99
  std::string SnapshotCsv(SimTime now = 0) const;

  // Zeroes every cell (global reset; components reset their own cells via the
  // pointers they hold).
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kSeries };
  struct Family {
    Kind kind = Kind::kCounter;
    // std::map: deterministic export order and stable cell addresses.
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Series> series;
  };

  Family& GetFamily(const std::string& name, Kind kind);

  std::map<std::string, Family> families_;
};

}  // namespace ofc::obs

#endif  // OFC_OBS_METRICS_H_
