// FlightRecorder: a black-box ring of per-invocation causal lifecycle records.
//
// Every instrumented layer appends compact records (submit → queue → cold/warm
// start → E/T/L phases → cache ops → persistor/write-back, plus control-plane
// events: breaker trips, pressure hysteresis, injected faults, node crashes) to
// a bounded ring. Parent ids link pipeline tasks to their pipeline and
// persistor jobs back to the invocation that issued the write, so the causal
// chain for any invocation can be reassembled after the fact.
//
// Unlike the TraceRecorder (off by default, sampled, unbounded categories),
// the flight recorder is designed to be cheap enough to leave ON for long
// runs: fixed-capacity ring (old records evicted), plain struct appends, no
// string formatting until dump time. Its payoff is post-mortem triage — on a
// SIM_ASSERT failure or a chaos-invariant breach the ring is dumped as JSON,
// preserving the last N events that led up to the failure.
//
// Emit sites guard on `enabled()` exactly like trace emits (simlint enforces
// this for src/ outside the obs layer), so tier-1 runtimes pay one untaken
// branch when the recorder is off.
#ifndef OFC_OBS_FLIGHT_RECORDER_H_
#define OFC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace ofc::obs {

enum class FlightEventKind : std::uint8_t {
  // faas/platform lifecycle.
  kSubmit,
  kQueue,
  kShed,
  kColdStart,
  kWarmStart,
  kExtract,
  kTransform,
  kLoad,
  kOomRescue,
  kOomKill,
  kRetry,
  kComplete,
  kFail,
  kWorkerCrash,
  kWorkerRestore,
  kPipelineStart,
  kPipelineEnd,
  // core/proxy + cache.
  kCacheHit,
  kCacheMiss,
  kCacheAdmit,
  kCacheWrite,
  kWriteFallback,
  kPersistorDispatch,
  kPersistorDone,
  kPersistorRetry,
  kPersistorConflict,
  kWriteback,
  kBreakerOpen,
  kBreakerClose,
  // core/cache_agent.
  kScaleUp,
  kScaleDown,
  kMigration,
  kEvict,  // Object left the cache; detail = eviction reason (policy engine).
  kPressureEnter,
  kPressureExit,
  // fault/ + ramcloud/.
  kFaultInject,
  kFaultHeal,
  kNodeCrash,
  kNodeRestart,
  kNodeRecovered,
  // Data integrity (checksum verify / scrub / quarantine).
  kCorruptionDetected,
  kCorruptionRepaired,
  kNodeQuarantined,
};

// Stable wire name for dumps ("submit", "cache_hit", ...).
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;  // Monotonic append index (survives ring eviction).
  SimTime time = 0;
  FlightEventKind kind = FlightEventKind::kSubmit;
  // Invocation this record belongs to; 0 for control-plane events that are not
  // tied to a specific invocation (breaker trips, node crashes, ...).
  std::uint64_t invocation_id = 0;
  // Causal parent: pipeline id for pipeline tasks, invocation id for persistor
  // jobs and write-backs, fault id for fault windows. 0 = no parent.
  std::uint64_t parent_id = 0;
  std::int32_t worker = -1;   // Worker/node index; -1 when not applicable.
  std::string subject;        // Function name / object key / fault kind.
  std::string detail;         // Free-form context (status, reason, sizes).
};

struct FlightRecorderOptions {
  bool enabled = false;
  std::size_t capacity = 4096;  // Ring size; oldest records evicted beyond it.
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {}) : options_(options) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return options_.enabled; }
  void set_enabled(bool on) { options_.enabled = on; }
  void set_capacity(std::size_t n);
  const FlightRecorderOptions& options() const { return options_; }

  // Appends a record; evicts the oldest when the ring is full. Callers guard
  // on enabled() — Record() re-checks, so an unguarded call is safe, just
  // slower than the branch the guard idiom buys.
  void Record(SimTime time, FlightEventKind kind, std::uint64_t invocation_id,
              std::uint64_t parent_id = 0, std::int32_t worker = -1, std::string subject = "",
              std::string detail = "");

  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return next_seq_; }
  std::uint64_t evicted() const { return next_seq_ - ring_.size(); }
  // The i-th retained record in append order (0 = oldest). Storage is a
  // circular vector, so there is no contiguous view to hand out.
  const FlightEvent& at(std::size_t i) const { return ring_[(start_ + i) % ring_.size()]; }

  // All retained records for one invocation id (matched on invocation_id or
  // parent_id), in append order — the causal chain for post-mortem triage.
  std::vector<const FlightEvent*> ChainFor(std::uint64_t invocation_id) const;

  // Dump: {"total_recorded": N, "evicted": M, "events": [...]} with records in
  // append order. `reason` annotates why the dump was taken (assert message,
  // violated invariant).
  std::string ToJson(const std::string& reason = "") const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path, const std::string& reason = "") const;

  void Clear();

 private:
  // Circular buffer: grows by push_back until `capacity` records are retained,
  // then overwrites in place starting at start_ (the oldest record). The old
  // deque paid a node allocation per eviction cycle and never returned memory;
  // the vector's footprint is fixed at capacity × sizeof(FlightEvent) (the
  // grow phase trims any geometric overshoot once, on reaching capacity).
  FlightRecorderOptions options_;
  std::vector<FlightEvent> ring_;
  std::size_t start_ = 0;  // Index of the oldest retained record.
  std::uint64_t next_seq_ = 0;
};

}  // namespace ofc::obs

#endif  // OFC_OBS_FLIGHT_RECORDER_H_
