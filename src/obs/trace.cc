#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/export_util.h"

namespace ofc::obs {

bool TraceRecorder::Admit() {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  Event ev;
  ev.phase = 'M';
  ev.name = "process_name";
  ev.pid = pid;
  ev.args = {{"name", name}};
  metadata_.push_back(std::move(ev));
}

void TraceRecorder::SetThreadName(int pid, std::uint64_t tid, const std::string& name) {
  Event ev;
  ev.phase = 'M';
  ev.name = "thread_name";
  ev.pid = pid;
  ev.tid = tid;
  ev.args = {{"name", name}};
  metadata_.push_back(std::move(ev));
}

void TraceRecorder::Span(const std::string& name, const std::string& category, SimTime start,
                         SimDuration duration, int pid, std::uint64_t tid, Args args) {
  if (!options_.enabled || !Admit()) {
    return;
  }
  Event ev;
  ev.phase = 'X';
  ev.name = name;
  ev.category = category;
  ev.ts = start;
  ev.duration = duration < 0 ? 0 : duration;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceRecorder::Instant(const std::string& name, const std::string& category, SimTime ts,
                            int pid, std::uint64_t tid, Args args) {
  if (!options_.enabled || !Admit()) {
    return;
  }
  Event ev;
  ev.phase = 'i';
  ev.name = name;
  ev.category = category;
  ev.ts = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceRecorder::CounterSample(const std::string& name, SimTime ts, int pid, double value) {
  if (!options_.enabled || !Admit()) {
    return;
  }
  Event ev;
  ev.phase = 'C';
  ev.name = name;
  ev.category = "counter";
  ev.ts = ts;
  ev.pid = pid;
  ev.value = value;
  events_.push_back(std::move(ev));
}

void TraceRecorder::Clear() {
  events_.clear();
  metadata_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const {
  // Sort by start time; at equal timestamps the longer span first, so an
  // enclosing span always precedes the spans nested inside it.
  std::vector<const Event*> order;
  order.reserve(events_.size());
  for (const Event& ev : events_) {
    order.push_back(&ev);
  }
  std::stable_sort(order.begin(), order.end(), [](const Event* a, const Event* b) {
    if (a->ts != b->ts) {
      return a->ts < b->ts;
    }
    return a->duration > b->duration;
  });

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto emit = [&](const Event& ev) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\": \"" + JsonEscape(ev.name) + "\"";
    if (!ev.category.empty()) {
      out += ", \"cat\": \"" + JsonEscape(ev.category) + "\"";
    }
    out += ", \"ph\": \"";
    out += ev.phase;
    out += "\"";
    if (ev.phase != 'M') {
      out += ", \"ts\": " + std::to_string(ev.ts);
    }
    if (ev.phase == 'X') {
      out += ", \"dur\": " + std::to_string(ev.duration);
    }
    if (ev.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": " + std::to_string(ev.pid);
    out += ", \"tid\": " + std::to_string(ev.tid);
    if (ev.phase == 'C') {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", ev.value);
      out += ", \"args\": {\"value\": ";
      out += buf;
      out += "}";
    } else if (!ev.args.empty()) {
      out += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) {
          out += ", ";
        }
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
      }
      out += "}";
    }
    out += "}";
  };
  for (const Event& ev : metadata_) {
    emit(ev);
  }
  for (const Event* ev : order) {
    emit(*ev);
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace ofc::obs
