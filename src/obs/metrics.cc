#include "src/obs/metrics.h"

#include <cassert>

#include "src/obs/export_util.h"

namespace ofc::obs {

namespace {

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "series";
  }
}

}  // namespace

Histogram Series::ToHistogram(double lo, double hi, std::size_t buckets) const {
  Histogram histogram(lo, hi, buckets);
  for (double v : samples_.values()) {
    histogram.Add(v);
  }
  return histogram;
}

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& name, Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  }
  // A family's kind is fixed by its first accessor; mixing kinds under one
  // name is a programming error.
  assert(it->second.kind == kind);
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& label) {
  return &GetFamily(name, Kind::kCounter).counters[label];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& label) {
  return &GetFamily(name, Kind::kGauge).gauges[label];
}

Series* MetricsRegistry::GetSeries(const std::string& name, const std::string& label) {
  return &GetFamily(name, Kind::kSeries).series[label];
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                            const std::string& label) const {
  auto it = families_.find(name);
  if (it == families_.end()) {
    return 0;
  }
  auto cell = it->second.counters.find(label);
  return cell == it->second.counters.end() ? 0 : cell->second.value();
}

double MetricsRegistry::GaugeValue(const std::string& name, const std::string& label) const {
  auto it = families_.find(name);
  if (it == families_.end()) {
    return 0.0;
  }
  auto cell = it->second.gauges.find(label);
  return cell == it->second.gauges.end() ? 0.0 : cell->second.value();
}

const Series* MetricsRegistry::FindSeries(const std::string& name,
                                          const std::string& label) const {
  auto it = families_.find(name);
  if (it == families_.end()) {
    return nullptr;
  }
  auto cell = it->second.series.find(label);
  return cell == it->second.series.end() ? nullptr : &cell->second;
}

std::uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  auto it = families_.find(name);
  if (it == families_.end()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& [label, counter] : it->second.counters) {
    total += counter.value();
  }
  return total;
}

std::string MetricsRegistry::SnapshotJson(SimTime now) const {
  std::string out = "{\"sim_time_us\": " + std::to_string(now) + ", \"metrics\": [";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) {
      out += ",";
    }
    first_family = false;
    out += "\n  {\"name\": \"" + JsonEscape(name) + "\", \"type\": \"" +
           KindName(static_cast<int>(family.kind)) + "\", \"cells\": [";
    bool first_cell = true;
    auto cell_prefix = [&](const std::string& label) {
      if (!first_cell) {
        out += ", ";
      }
      first_cell = false;
      out += "{\"label\": \"" + JsonEscape(label) + "\", ";
    };
    switch (family.kind) {
      case Kind::kCounter:
        for (const auto& [label, counter] : family.counters) {
          cell_prefix(label);
          out += "\"value\": " + std::to_string(counter.value()) + "}";
        }
        break;
      case Kind::kGauge:
        for (const auto& [label, gauge] : family.gauges) {
          cell_prefix(label);
          out += "\"value\": " + JsonNumber(gauge.value()) + "}";
        }
        break;
      case Kind::kSeries:
        for (const auto& [label, series] : family.series) {
          cell_prefix(label);
          const RunningStat& running = series.running();
          const Samples& samples = series.samples();
          out += "\"count\": " + std::to_string(running.count());
          out += ", \"sum\": " + JsonNumber(running.sum());
          out += ", \"mean\": " + JsonNumber(running.mean());
          out += ", \"min\": " + JsonNumber(running.min());
          out += ", \"max\": " + JsonNumber(running.max());
          out += ", \"p50\": " + JsonNumber(samples.Percentile(0.50));
          out += ", \"p95\": " + JsonNumber(samples.Percentile(0.95));
          out += ", \"p99\": " + JsonNumber(samples.Percentile(0.99));
          out += "}";
        }
        break;
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string MetricsRegistry::SnapshotCsv(SimTime now) const {
  std::string out = "name,type,label,value,count,mean,min,max,p50,p95,p99\n";
  (void)now;  // The snapshot time rides in the file name / caller context.
  for (const auto& [name, family] : families_) {
    const char* kind = KindName(static_cast<int>(family.kind));
    switch (family.kind) {
      case Kind::kCounter:
        for (const auto& [label, counter] : family.counters) {
          out += CsvField(name);
          out += ',';
          out += kind;
          out += ',';
          out += CsvField(label);
          out += ',' + std::to_string(counter.value()) + ",,,,,,,\n";
        }
        break;
      case Kind::kGauge:
        for (const auto& [label, gauge] : family.gauges) {
          out += CsvField(name);
          out += ',';
          out += kind;
          out += ',';
          out += CsvField(label);
          out += ',' + JsonNumber(gauge.value()) + ",,,,,,,\n";
        }
        break;
      case Kind::kSeries:
        for (const auto& [label, series] : family.series) {
          const RunningStat& running = series.running();
          const Samples& samples = series.samples();
          out += CsvField(name);
          out += ',';
          out += kind;
          out += ',';
          out += CsvField(label);
          out += ",," + std::to_string(running.count());
          out += ',' + JsonNumber(running.mean());
          out += ',' + JsonNumber(running.min());
          out += ',' + JsonNumber(running.max());
          out += ',' + JsonNumber(samples.Percentile(0.50));
          out += ',' + JsonNumber(samples.Percentile(0.95));
          out += ',' + JsonNumber(samples.Percentile(0.99));
          out += '\n';
        }
        break;
    }
  }
  return out;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const std::string&, const Counter&)>& fn)
    const {
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kCounter) {
      continue;
    }
    for (const auto& [label, cell] : family.counters) {
      fn(name, label, cell);
    }
  }
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kGauge) {
      continue;
    }
    for (const auto& [label, cell] : family.gauges) {
      fn(name, label, cell);
    }
  }
}

void MetricsRegistry::VisitSeries(
    const std::function<void(const std::string&, const std::string&, const Series&)>& fn) const {
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kSeries) {
      continue;
    }
    for (const auto& [label, cell] : family.series) {
      fn(name, label, cell);
    }
  }
}

void MetricsRegistry::Reset() {
  for (auto& [name, family] : families_) {
    for (auto& [label, counter] : family.counters) {
      counter.Reset();
    }
    for (auto& [label, gauge] : family.gauges) {
      gauge.Reset();
    }
    for (auto& [label, series] : family.series) {
      series.Reset();
    }
  }
}

}  // namespace ofc::obs
