// Shared serialization helpers for the observability exporters.
//
// Every artifact the simulator writes (metrics snapshots, trace JSON, timeline
// windows, SLO health summaries, flight-recorder dumps) funnels string data
// from uncontrolled sources — function names, tenant names, SLO specs typed on
// the command line — into JSON or CSV. Centralizing the escaping here keeps
// the exporters byte-compatible with each other and makes "hostile label"
// hardening a single-point fix instead of a per-exporter audit.
#ifndef OFC_OBS_EXPORT_UTIL_H_
#define OFC_OBS_EXPORT_UTIL_H_

#include <string>

namespace ofc::obs {

// JSON string-body escaping: quotes, backslashes, and control characters.
// The caller supplies the surrounding quotes.
std::string JsonEscape(const std::string& s);

// Renders a double as a JSON number: never "nan"/"inf" (clamped to 0), and
// integral values render without a fractional part so integer parsers
// round-trip losslessly.
std::string JsonNumber(double v);

// RFC-4180 CSV field: quoted (with doubled inner quotes) only when the value
// contains a comma, quote, or newline; returned verbatim otherwise.
std::string CsvField(const std::string& s);

}  // namespace ofc::obs

#endif  // OFC_OBS_EXPORT_UTIL_H_
