// TimelineRecorder: windowed time-series scrapes of the MetricsRegistry.
//
// The end-of-run snapshot collapses a whole run into totals; the timeline
// recorder instead scrapes the registry on a periodic sim-clock timer (see
// sim::PeriodicTask) and keeps a bounded ring of *windows*. Each window stores,
// per cell:
//   * counters — cumulative value, the delta over the window, and the rate/s
//     (delta is reset-safe: a value that shrank is treated as a restart and
//     the post-reset value becomes the delta);
//   * gauges   — the instantaneous value at scrape time;
//   * series   — cumulative count, the window's observation delta, the exact
//     interval mean (from the RunningStat sum delta), interval p50/p95/p99
//     over the stored-sample slice that arrived during the window, and the
//     whole-run p50/p99 for comparison. Once a series hits its stored-sample
//     cap, interval percentiles go quiet (no new stored samples) while the
//     interval mean stays exact.
//
// Windows evict oldest-first at capacity, so a long run keeps the most recent
// history at full resolution. Export is a machine-readable JSON document whose
// byte content is a pure function of the scrape sequence — the determinism
// selfcheck replays a run and diffs timelines byte-for-byte.
#ifndef OFC_OBS_TIMELINE_H_
#define OFC_OBS_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"

namespace ofc::obs {

struct TimelineOptions {
  std::size_t max_windows = 512;  // Ring capacity; oldest windows evicted.
};

struct TimelineCounter {
  std::string name;
  std::string label;
  std::uint64_t value = 0;  // Cumulative at window end.
  std::uint64_t delta = 0;  // Increase over this window (reset-safe).
  double rate_per_s = 0.0;
};

struct TimelineGauge {
  std::string name;
  std::string label;
  double value = 0.0;
};

struct TimelineSeries {
  std::string name;
  std::string label;
  std::uint64_t count = 0;  // Cumulative observation count at window end.
  std::uint64_t delta = 0;  // Observations during this window.
  double interval_mean = 0.0;  // Exact (sum delta / count delta).
  // Percentiles over stored samples that arrived during this window; 0 when
  // the window saw no stored samples (quiet window or capped storage).
  double interval_p50 = 0.0;
  double interval_p95 = 0.0;
  double interval_p99 = 0.0;
  // Whole-run percentiles at window end, for drift comparison.
  double run_p50 = 0.0;
  double run_p99 = 0.0;
};

struct TimelineWindow {
  std::uint64_t index = 0;  // Monotonic scrape index (survives eviction).
  SimTime start = 0;        // Previous scrape time (0 for the first window).
  SimTime end = 0;          // Scrape time.
  std::vector<TimelineCounter> counters;
  std::vector<TimelineGauge> gauges;
  std::vector<TimelineSeries> series;
};

class TimelineRecorder {
 public:
  // `registry` must outlive the recorder.
  explicit TimelineRecorder(const MetricsRegistry* registry, TimelineOptions options = {});
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  // Captures one window covering (last scrape, now]. Cell order inside the
  // window follows registry (family, label) order, so output is deterministic.
  void Scrape(SimTime now);

  const std::deque<TimelineWindow>& windows() const { return windows_; }
  std::uint64_t total_windows() const { return next_index_; }
  std::uint64_t evicted() const { return next_index_ - windows_.size(); }

  // Convenience for tests and health checks: the counter delta recorded in a
  // retained window (0 if the window/cell is absent).
  std::uint64_t CounterDelta(std::uint64_t window_index, const std::string& name,
                             const std::string& label = "") const;

  // {"total_windows": N, "evicted": M, "windows": [...]}
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  struct PrevCounter {
    std::uint64_t value = 0;
  };
  struct PrevSeries {
    std::size_t count = 0;          // RunningStat count at last scrape.
    double sum = 0.0;               // RunningStat sum at last scrape.
    std::size_t stored_count = 0;   // Stored-sample count at last scrape.
  };

  const MetricsRegistry* registry_;
  TimelineOptions options_;
  std::deque<TimelineWindow> windows_;
  std::uint64_t next_index_ = 0;
  SimTime last_scrape_ = 0;
  bool scraped_once_ = false;
  // Keyed "name\0label"; std::map for deterministic iteration if ever needed.
  std::map<std::string, PrevCounter> prev_counters_;
  std::map<std::string, PrevSeries> prev_series_;
};

}  // namespace ofc::obs

#endif  // OFC_OBS_TIMELINE_H_
