#include "src/faas/metadata_store.h"

#include <utility>

namespace ofc::faas {

MetadataStore::MetadataStore(sim::EventLoop* loop, Rng rng, sim::LatencyModel latency)
    : loop_(loop), rng_(rng), latency_(latency) {}

void MetadataStore::Put(const std::string& id, std::string body,
                        std::uint64_t expected_revision, PutCallback done) {
  const SimDuration cost = latency_.Cost(static_cast<Bytes>(body.size()), &rng_);
  loop_->ScheduleAfter(cost, [this, id, body = std::move(body), expected_revision,
                              done = std::move(done)]() mutable {
    auto it = documents_.find(id);
    const std::uint64_t current = it == documents_.end() ? 0 : it->second.revision;
    if (expected_revision != current) {
      done(AbortedError("revision conflict on " + id));
      return;
    }
    Document& doc = documents_[id];
    doc.id = id;
    doc.revision = current + 1;
    doc.body = std::move(body);
    done(doc.revision);
  });
}

void MetadataStore::Get(const std::string& id, GetCallback done) {
  auto it = documents_.find(id);
  const SimDuration cost =
      latency_.Cost(it == documents_.end() ? 0 : static_cast<Bytes>(it->second.body.size()),
                    &rng_);
  loop_->ScheduleAfter(cost, [this, id, done = std::move(done)]() {
    auto it2 = documents_.find(id);
    if (it2 == documents_.end()) {
      done(NotFoundError("no document: " + id));
      return;
    }
    done(it2->second);
  });
}

void MetadataStore::Delete(const std::string& id, std::uint64_t expected_revision,
                           Callback done) {
  loop_->ScheduleAfter(latency_.Cost(0, &rng_), [this, id, expected_revision,
                                                 done = std::move(done)]() {
    auto it = documents_.find(id);
    if (it == documents_.end()) {
      done(NotFoundError("no document: " + id));
      return;
    }
    if (it->second.revision != expected_revision) {
      done(AbortedError("revision conflict on " + id));
      return;
    }
    documents_.erase(it);
    done(OkStatus());
  });
}

Result<Document> MetadataStore::Stat(const std::string& id) const {
  auto it = documents_.find(id);
  if (it == documents_.end()) {
    return NotFoundError("no document: " + id);
  }
  return it->second;
}

void MetadataStore::Seed(const std::string& id, std::string body) {
  Document& doc = documents_[id];
  doc.id = id;
  doc.revision += 1;
  doc.body = std::move(body);
}

}  // namespace ofc::faas
