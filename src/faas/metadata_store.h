// MetadataStore: a CouchDB-like document database, as OpenWhisk uses for
// function metadata. Documents are revisioned: writes must present the current
// revision (0 to create) and conflict otherwise — CouchDB's MVCC contract.
//
// OFC stores each function's ML models here (§5.1): "we store all the function
// models in OWK's database (CouchDB), so when a function is invoked and OWK
// fetches its metadata, it also gets its model".
#ifndef OFC_FAAS_METADATA_STORE_H_
#define OFC_FAAS_METADATA_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/event_loop.h"
#include "src/sim/latency.h"

namespace ofc::faas {

struct Document {
  std::string id;
  std::uint64_t revision = 0;
  std::string body;
};

class MetadataStore {
 public:
  using PutCallback = std::function<void(Result<std::uint64_t>)>;  // New revision.
  using GetCallback = std::function<void(Result<Document>)>;
  using Callback = std::function<void(Status)>;

  // Default latency: a same-rack CouchDB round trip.
  MetadataStore(sim::EventLoop* loop, Rng rng,
                sim::LatencyModel latency = sim::LatencyModel{Millis(2), 200e6, 0.05});

  // Creates (expected_revision == 0) or updates a document. A stale revision
  // fails with kAborted (CouchDB's 409 conflict).
  void Put(const std::string& id, std::string body, std::uint64_t expected_revision,
           PutCallback done);

  void Get(const std::string& id, GetCallback done);

  void Delete(const std::string& id, std::uint64_t expected_revision, Callback done);

  // ---- Synchronous management/test plane (zero simulated cost) ----

  Result<Document> Stat(const std::string& id) const;
  bool Exists(const std::string& id) const { return documents_.contains(id); }
  std::size_t NumDocuments() const { return documents_.size(); }
  // Installs a document directly (bootstrap / test fixtures).
  void Seed(const std::string& id, std::string body);

 private:
  sim::EventLoop* loop_;
  Rng rng_;
  sim::LatencyModel latency_;
  // Looked up by id, never iterated; salted hashing keeps that honest under
  // test (tests/determinism_test.cpp perturbs the salt).
  std::unordered_map<std::string, Document, DetHash<std::string>> documents_;
};

}  // namespace ofc::faas

#endif  // OFC_FAAS_METADATA_STORE_H_
