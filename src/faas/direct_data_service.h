// DirectDataService: the baseline data plane — every Extract reads from and
// every Load writes to the remote store, with no caching. Instantiated against
// a Swift-profile store it is the paper's OWK-Swift baseline; against a
// Redis-profile store it is OWK-Redis (best-case IMOC).
#ifndef OFC_FAAS_DIRECT_DATA_SERVICE_H_
#define OFC_FAAS_DIRECT_DATA_SERVICE_H_

#include <string>

#include "src/faas/platform.h"
#include "src/store/object_store.h"

namespace ofc::faas {

// Serializes a media descriptor into store metadata tags — the §5.1.2
// background feature extraction performed at object-creation time.
store::Tags MediaToTags(const workloads::MediaDescriptor& media);

class DirectDataService : public DataService {
 public:
  explicit DirectDataService(store::ObjectStore* rsds) : rsds_(rsds) {}

  void Read(const InvocationContext& ctx, const std::string& key,
            std::function<void(Result<Bytes>)> done) override;
  void Write(const InvocationContext& ctx, const std::string& key, Bytes size,
             const workloads::MediaDescriptor& media,
             std::function<void(Status)> done) override;

 private:
  store::ObjectStore* rsds_;
};

}  // namespace ofc::faas

#endif  // OFC_FAAS_DIRECT_DATA_SERVICE_H_
