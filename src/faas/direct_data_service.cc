#include "src/faas/direct_data_service.h"

namespace ofc::faas {

store::Tags MediaToTags(const workloads::MediaDescriptor& media) {
  store::Tags tags;
  tags["kind"] = workloads::InputKindName(media.kind);
  tags["format"] = std::to_string(media.format);
  if (media.width > 0) {
    tags["width"] = std::to_string(media.width);
    tags["height"] = std::to_string(media.height);
  }
  if (media.duration_s > 0) {
    tags["duration_s"] = std::to_string(media.duration_s);
  }
  if (media.channels > 0) {
    tags["channels"] = std::to_string(media.channels);
  }
  return tags;
}

void DirectDataService::Read(const InvocationContext&, const std::string& key,
                             std::function<void(Result<Bytes>)> done) {
  rsds_->Get(key, [done = std::move(done)](Result<store::ObjectMetadata> meta) {
    if (!meta.ok()) {
      done(meta.status());
      return;
    }
    done(meta->size);
  });
}

void DirectDataService::Write(const InvocationContext&, const std::string& key, Bytes size,
                              const workloads::MediaDescriptor& media,
                              std::function<void(Status)> done) {
  rsds_->Put(key, size, MediaToTags(media), std::move(done));
}

}  // namespace ofc::faas
