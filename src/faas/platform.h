// An OpenWhisk-style FaaS platform (§2.1) as a discrete-event model.
//
// Reproduced behaviours:
//   * Controller + Loadbalancer: requests route to an idle warm sandbox of the
//     same function when one exists; otherwise a new sandbox is created
//     immediately (no queueing behind long-running requests). The default home
//     worker is hash(function, tenant) % workers, probed linearly for capacity.
//   * Invoker/sandbox lifecycle: Docker-like sandboxes with cold-start latency,
//     per-sandbox memory limits (cgroup), a keep-alive timeout (600 s in OWK),
//     one invocation at a time per sandbox, and no cross-function reuse.
//   * OOM semantics (§5.3.1): an invocation whose actual footprint exceeds its
//     sandbox limit is killed and retried once with the tenant-booked memory —
//     unless the Monitor hook rescues it by raising the cap mid-flight
//     (only possible for invocations running >= 3 s).
//   * ETL phases: Extract reads every input object through a DataService,
//     Transform consumes the workload model's compute time, Load writes the
//     outputs. Per-phase durations are measured into InvocationRecord.
//   * Pipelines (§2.1 "sequences"): barrier-synchronized stages with fan-out /
//     fan-in tasks over chunked objects.
//
// OFC integrates exclusively through two seams, mirroring the paper's
// color-filled boxes in Figure 4: DataService (the Proxy/rclib interposition)
// and PlatformHooks (Predictor/Sizer/Monitor/ModelTrainer + routing policy).
#ifndef OFC_FAAS_PLATFORM_H_
#define OFC_FAAS_PLATFORM_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/recycling_pool.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"
#include "src/workloads/functions.h"
#include "src/workloads/pipelines.h"

namespace ofc::faas {

struct PlatformOptions {
  int num_workers = 4;
  Bytes worker_memory = GiB(8);        // Invoker memory pool (sandboxes + cache).
  Bytes min_sandbox_memory = MiB(64);  // Smallest configurable limit in OWK.
  Bytes max_sandbox_memory = GiB(2);   // OWK's permitted-allocation ceiling.
  SimDuration keep_alive = Seconds(600);        // OWK default.
  SimDuration cold_start = Millis(180);         // Container cold start under load.
  SimDuration dispatch_overhead = Millis(8);    // Empty-function e2e time (§6.4).
  SimDuration cgroup_resize = Micros(23800);    // docker update total (§7.2.1).
  SimDuration retry_delay = Millis(10);
  // ---- Overload protection (bounded admission & load shedding) -----------------
  // All limits default to 0 = disabled, preserving the unbounded behaviour.
  // A request that cannot be admitted — the wait queue is at `max_queue_depth`,
  // or it has been queued for `queue_deadline` — is *shed*: completed exactly
  // once with `failed` set and `final_status == kResourceExhausted`, instead of
  // parking in the queue forever.
  std::size_t max_queue_depth = 0;       // Wait-queue slots (0 = unbounded).
  SimDuration queue_deadline = 0;        // Max queue wait (0 = no deadline).
  int max_concurrency_per_function = 0;  // Running invocations per function.
  int max_concurrency_per_tenant = 0;    // Running invocations per tenant.
  // Observability sinks (src/obs/). When `metrics` is null the platform owns a
  // private registry (standalone construction in unit tests); `trace` may stay
  // null — lifecycle spans are then skipped entirely; `flight` may stay null —
  // black-box lifecycle records are then skipped entirely.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

struct FunctionConfig {
  workloads::FunctionSpec spec;
  std::string tenant = "default";
  Bytes booked_memory = GiB(2);
  // Dense per-platform function index, assigned at registration (1, 2, ...).
  // 0 = not registered. Rides along in InvocationContext / InvocationRecord so
  // hot-path metric-cell lookups index a vector instead of hashing the name.
  std::uint32_t fn_index = 0;
};

// One input object of an invocation: its store key plus the descriptive
// metadata (tags) that the platform fetched alongside the function metadata.
struct InputObject {
  std::string key;
  workloads::MediaDescriptor media;
};

struct InvocationRecord {
  std::uint64_t id = 0;
  std::string function;
  std::uint32_t fn_index = 0;  // FunctionConfig::fn_index (0 = unregistered).
  int worker = -1;
  bool cold_start = false;
  bool oom_killed = false;   // At least one OOM kill occurred (before retry).
  bool oom_rescued = false;  // Monitor raised the cap mid-flight.
  bool failed = false;       // Unrecoverable (retry also failed).
  bool shed = false;         // Rejected by overload protection (never ran).
  // Terminal disposition: kOk on success, kResourceExhausted when shed,
  // kInternal for execution failures. Lets callers tell load shedding apart
  // from genuine failures without string matching.
  StatusCode final_status = StatusCode::kOk;
  int retries = 0;
  SimDuration startup_time = 0;  // Dispatch + (cold start | warm reuse).
  SimDuration extract_time = 0;
  SimDuration compute_time = 0;
  SimDuration load_time = 0;
  SimDuration total = 0;  // Request arrival to completion.
  Bytes memory_limit = 0;  // Final sandbox limit the invocation ran under.
  Bytes memory_used = 0;   // Actual peak footprint (ground truth).
  Bytes input_bytes = 0;
  Bytes output_bytes = 0;
  bool should_cache = false;  // Sizing decision that applied to this run.
  // Output object produced by the Load phase (pipeline drivers chain on it).
  std::string output_key;
  workloads::MediaDescriptor output_media;
};

struct PipelineRecord {
  std::uint64_t id = 0;
  std::string pipeline;
  bool failed = false;
  SimDuration total = 0;
  // Sums over all stage tasks (Figure 7 reports stacked E/T/L contributions).
  SimDuration extract_time = 0;
  SimDuration compute_time = 0;
  SimDuration load_time = 0;
  std::size_t num_tasks = 0;
};

// Context handed to the data plane for every read/write.
struct InvocationContext {
  std::uint64_t invocation_id = 0;
  std::string function;
  // FunctionConfig::fn_index — a per-read fast path for data services that
  // cache per-function metric cells (0 = unassigned; name lookup applies).
  // Hand-built contexts may leave it 0; consumers must validate `function`
  // before trusting a cached slot.
  std::uint32_t fn_index = 0;
  int worker = -1;
  std::uint64_t pipeline_id = 0;  // 0 for single-stage invocations.
  bool final_stage = true;
  bool should_cache = false;
};

// Data-plane interposition point (the paper's Proxy seam). Implementations:
// DirectDataService (OWK-Swift / OWK-Redis baselines) and core::Proxy (OFC).
class DataService {
 public:
  virtual ~DataService() = default;
  // Reads `key`; reports the payload size once available to the function.
  virtual void Read(const InvocationContext& ctx, const std::string& key,
                    std::function<void(Result<Bytes>)> done) = 0;
  // Writes an output object of `size` bytes.
  virtual void Write(const InvocationContext& ctx, const std::string& key, Bytes size,
                     const workloads::MediaDescriptor& media,
                     std::function<void(Status)> done) = 0;
  // Fired when a pipeline's last stage completes (intermediate cleanup, §6.3).
  virtual void OnPipelineComplete(std::uint64_t pipeline_id) {
    (void)pipeline_id;
  }
};

// Idle-sandbox candidate handed to the routing policy.
struct SandboxInfo {
  std::uint64_t sandbox_id = 0;
  int worker = -1;
  Bytes current_limit = 0;
  SimTime last_used = 0;
};

// Sandbox memory accounting event. The scheduler reserves the tenant-*booked*
// memory for every sandbox (vanilla OWK behaviour); the Sizer sets the actual
// cgroup limit. The hoardable amount — what OFC's cache may use — is the
// booked-but-unused difference (§2.2.1's "wasted memory").
struct SandboxMemoryEvent {
  int worker = -1;
  Bytes booked = 0;
  Bytes old_limit = 0;
  Bytes new_limit = 0;
  Bytes old_hoard() const { return std::max<Bytes>(0, old_limit == 0 ? 0 : booked - old_limit); }
  Bytes new_hoard() const { return std::max<Bytes>(0, new_limit == 0 ? 0 : booked - new_limit); }
};

// Control-plane seam (the paper's Predictor / Sizer / Monitor / routing
// changes). The default implementation reproduces vanilla OWK.
class PlatformHooks {
 public:
  virtual ~PlatformHooks() = default;

  struct Sizing {
    Bytes memory_limit = 0;     // Sandbox limit for this invocation.
    bool should_cache = false;  // Caching-benefit prediction (§5.2).
  };

  // Memory sizing for one invocation. Default: the tenant-booked memory.
  virtual Sizing SizeInvocation(const FunctionConfig& fn,
                                const std::vector<InputObject>& inputs,
                                const std::vector<double>& args);

  // Picks among idle warm sandboxes (§6.5 criteria). `candidates` is non-empty.
  // Default: most recently used.
  virtual std::size_t PickSandbox(const std::vector<SandboxInfo>& candidates,
                                  Bytes wanted_limit,
                                  const std::vector<InputObject>& inputs);

  // Picks the worker for a new sandbox from `candidates` (workers with
  // capacity, home-first order). Default: first candidate.
  virtual int PickWorkerForNewSandbox(const FunctionConfig& fn,
                                      const std::vector<InputObject>& inputs,
                                      const std::vector<int>& candidates);

  // Sandbox memory changed on a worker (creation: old_limit == 0; destruction:
  // new_limit == 0). OFC's CacheAgent hoards/releases the booked-minus-limit
  // difference here.
  virtual void OnSandboxMemoryChange(const SandboxMemoryEvent& event);

  // Monitor seam: may raise a running invocation's limit to `needed`.
  // `expected_compute` gates the >= 3 s monitoring rule. Default: never.
  virtual bool TryRaiseMemory(int worker, Bytes current_limit, Bytes needed,
                              SimDuration expected_compute);

  // Completion feedback (ModelTrainer seam).
  virtual void OnInvocationComplete(const FunctionConfig& fn,
                                    const std::vector<InputObject>& inputs,
                                    const std::vector<double>& args,
                                    const InvocationRecord& record);
};

// Snapshot view over the platform's `ofc.platform.*` registry counters (the
// registry is the source of truth; this struct exists for test/bench
// compatibility and human-readable summaries).
struct PlatformStats {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t oom_kills = 0;
  std::uint64_t oom_rescues = 0;
  std::uint64_t failed_invocations = 0;
  std::uint64_t retries = 0;
  std::uint64_t sandbox_reclaims = 0;  // Idle sandboxes evicted for capacity.
  std::uint64_t queued_requests = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_restores = 0;
  std::uint64_t crash_retries = 0;  // Invocations re-dispatched after a crash.
  std::uint64_t shed_requests = 0;  // Rejected by overload protection.
};

class Platform {
 public:
  using InvokeCallback = std::function<void(const InvocationRecord&)>;
  using PipelineCallback = std::function<void(const PipelineRecord&)>;

  // `data` must outlive the platform; `hooks` may be null (vanilla OWK).
  Platform(sim::EventLoop* loop, PlatformOptions options, DataService* data,
           PlatformHooks* hooks, Rng rng);

  Status RegisterFunction(FunctionConfig config);
  const FunctionConfig* GetFunction(const std::string& name) const;
  // Mutable access (tenant reconfiguration, e.g. "advanced" profile updates).
  FunctionConfig* GetMutableFunction(const std::string& name);

  // Invokes a single-stage function.
  void Invoke(const std::string& function, std::vector<InputObject> inputs,
              std::vector<double> args, InvokeCallback done);

  // Runs a pipeline over pre-chunked input objects.
  void InvokePipeline(const workloads::PipelineSpec& spec, std::vector<InputObject> chunks,
                      PipelineCallback done);

  // ---- Worker fail-stop (§6.1: OWK retries failed/timed-out invocations) -------

  // Crashes a worker: its sandboxes disappear, in-flight invocations on it are
  // aborted and retried on surviving workers, and the load balancer stops
  // placing work there until RestoreWorker().
  void CrashWorker(int worker);
  void RestoreWorker(int worker);
  bool WorkerAlive(int worker) const {
    return worker_alive_[static_cast<std::size_t>(worker)];
  }

  // ---- Introspection -----------------------------------------------------------

  int num_workers() const { return options_.num_workers; }
  const PlatformOptions& options() const { return options_; }
  // Memory reserved by sandboxes on a worker. As in OpenWhisk, the scheduler
  // accounts the tenant-booked amount per sandbox, regardless of the (possibly
  // smaller) cgroup limit the Sizer applied.
  Bytes SandboxReserved(int worker) const;
  Bytes WorkerFree(int worker) const;
  std::size_t NumSandboxes(int worker) const;
  std::size_t NumIdleSandboxes(const std::string& function) const;
  // Assembled on demand from the metrics registry.
  PlatformStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

  // Aggregate media descriptor for demand evaluation over multiple inputs; also
  // used by hooks that need one descriptor for feature extraction.
  static workloads::MediaDescriptor AggregateMedia(const std::vector<InputObject>& inputs);

 private:
  struct Sandbox {
    std::uint64_t id = 0;
    std::string function;
    int worker = -1;
    bool busy = false;
    Bytes booked = 0;  // Scheduler reservation (tenant-configured).
    Bytes limit = 0;   // Actual cgroup limit (Sizer-controlled).
    SimTime last_used = 0;
    sim::EventLoop::EventId keepalive_event = 0;
  };

  struct Request {
    std::uint64_t id = 0;
    std::string function;
    std::uint32_t fn_index = 0;  // Resolved at first dispatch (0 until then).
    std::vector<InputObject> inputs;
    std::vector<double> args;
    InvokeCallback done;
    SimTime arrival = 0;
    int retries = 0;
    bool oom_killed = false;
    Bytes forced_limit = 0;  // Retry path: run with the booked memory.
    std::uint64_t pipeline_id = 0;
    bool final_stage = true;
    std::string output_key;  // Defaults to "out/<function>/<id>".
    bool has_demand = false;
    workloads::InvocationDemand demand;  // Fixed at first dispatch (retries reuse it).
    // Bumped when the running worker crashes, so the stale execution's pending
    // continuations are discarded while the request is re-dispatched.
    std::uint64_t crash_epoch = 0;
    int running_worker = -1;
    // Admission bookkeeping: first wait-queue entry time (0 = never queued)
    // and the absolute shed-if-still-queued instant (0 = no deadline armed).
    SimTime first_queued = 0;
    SimTime queue_deadline_at = 0;
    bool queue_wait_recorded = false;  // Observe queue_wait_ms at most once.
  };

  // Registry cells behind PlatformStats plus the phase-latency series; bumped
  // on the hot path through cached pointers.
  struct Metrics {
    obs::Counter* invocations = nullptr;
    obs::Counter* cold_starts = nullptr;
    obs::Counter* warm_starts = nullptr;
    obs::Counter* oom_kills = nullptr;
    obs::Counter* oom_rescues = nullptr;
    obs::Counter* failed_invocations = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* sandbox_reclaims = nullptr;
    obs::Counter* queued_requests = nullptr;
    obs::Counter* worker_crashes = nullptr;
    obs::Counter* worker_restores = nullptr;
    obs::Counter* crash_retries = nullptr;
    obs::Counter* input_bytes = nullptr;
    obs::Counter* output_bytes = nullptr;
    obs::Counter* shed_queue_full = nullptr;  // ofc.overload.shed{queue_full}
    obs::Counter* shed_deadline = nullptr;    // ofc.overload.shed{deadline}
    obs::Series* queue_wait_ms = nullptr;     // Wait-queue residence on dispatch/shed.
    obs::Series* startup_ms = nullptr;
    obs::Series* extract_ms = nullptr;
    obs::Series* transform_ms = nullptr;
    obs::Series* load_ms = nullptr;
    obs::Series* total_ms = nullptr;
  };
  // Per-function label cells, cached so the hot path pays one hash lookup.
  struct FnMetrics {
    obs::Counter* invocations = nullptr;
    obs::Counter* cold_starts = nullptr;
    obs::Series* total_ms = nullptr;
  };
  FnMetrics& FnMetricsFor(const std::string& function);
  // Index fast path: record/context fn_index values are platform-assigned, so
  // a non-zero index resolves through fn_metrics_by_index_ without hashing
  // `function`; 0 (unregistered function) falls back to the name lookup.
  FnMetrics& FnMetricsAt(std::uint32_t fn_index, const std::string& function);
  void RecordCompletion(const InvocationRecord& record);
  bool Traced(std::uint64_t invocation_id) const {
    return trace_ != nullptr && trace_->Sampled(invocation_id);
  }
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }

  void InvokeInternal(std::shared_ptr<Request> request);

  void Dispatch(std::shared_ptr<Request> request);
  void RunOnSandbox(std::shared_ptr<Request> request, Sandbox* sandbox,
                    PlatformHooks::Sizing sizing, bool cold, SimDuration startup);
  void ExecutePhases(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                     InvocationRecord record, workloads::InvocationDemand demand);
  void FinishInvocation(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                        InvocationRecord record);
  void FailAndMaybeRetry(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                         InvocationRecord record);
  void ReleaseSandbox(std::uint64_t sandbox_id);
  void DestroySandbox(std::uint64_t sandbox_id);
  void ArmKeepAlive(Sandbox* sandbox);
  Sandbox* FindSandbox(std::uint64_t id);
  // Reserves capacity for a new sandbox on some worker; may reclaim idle
  // sandboxes. Returns worker id or -1 (request must wait).
  int PlaceNewSandbox(const FunctionConfig& fn, const std::vector<InputObject>& inputs,
                      Bytes limit);
  void SetSandboxLimit(Sandbox* sandbox, Bytes new_limit);
  int HomeWorker(const FunctionConfig& fn) const;
  void DrainWaitQueue();

  // ---- Overload protection (see PlatformOptions) -------------------------------
  // Queues `request` unless the wait queue is at capacity or the request's
  // deadline has passed (both shed). Arms the queue deadline on first entry.
  void EnqueueOrShed(std::shared_ptr<Request> request);
  // Queue-deadline event: sheds the request iff it is still waiting.
  void ShedExpired(std::uint64_t request_id);
  // Completes `request` with kResourceExhausted without running it.
  void Shed(std::shared_ptr<Request> request, obs::Counter* cell, const char* reason);
  // True when dispatching `fn` now would exceed a concurrency limit.
  bool OverConcurrencyLimit(const FunctionConfig& fn) const;
  // Concurrency accounting paired with in_flight_ insert (+1) / erase (-1).
  void TrackRunning(const Request& request, int delta);

  sim::EventLoop* loop_;
  PlatformOptions options_;
  DataService* data_;
  PlatformHooks* hooks_;  // Never null; defaults installed when none given.
  std::unique_ptr<PlatformHooks> default_hooks_;
  Rng rng_;

  std::map<std::string, FunctionConfig> functions_;
  // std::map: Sandbox addresses must stay stable across insertions because
  // async completions re-resolve by id while other sandboxes are created.
  std::map<std::uint64_t, Sandbox> sandboxes_;
  std::vector<Bytes> worker_reserved_;
  std::vector<bool> worker_alive_;
  std::uint64_t crash_epoch_ = 0;
  // Requests currently executing, for crash-time abort/retry.
  std::map<std::uint64_t, std::shared_ptr<Request>> in_flight_;
  std::deque<std::shared_ptr<Request>> wait_queue_;
  bool drain_scheduled_ = false;
  // Running-invocation counts behind the per-function / per-tenant concurrency
  // limits. Only maintained when a limit is configured.
  std::map<std::string, int> running_per_function_;
  std::map<std::string, int> running_per_tenant_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  Metrics m_;
  // Ordered: ResetStats() and future per-function exports iterate this map, so
  // its order must not depend on hashing.
  std::map<std::string, FnMetrics> fn_metrics_;
  // fn_index → cell pointers (stable: fn_metrics_ is a node-based map).
  std::vector<FnMetrics*> fn_metrics_by_index_;
  std::uint32_t next_fn_index_ = 1;
  // Request blocks are recycled: completion frees into the pool, the next
  // Invoke() reuses — zero steady-state allocation for request records.
  RecyclingPool<Request> request_pool_;
  std::uint64_t next_invocation_id_ = 1;
  std::uint64_t next_sandbox_id_ = 1;
  std::uint64_t next_pipeline_id_ = 1;
};

}  // namespace ofc::faas

#endif  // OFC_FAAS_PLATFORM_H_
