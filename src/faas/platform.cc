#include "src/faas/platform.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "src/common/logging.h"

namespace ofc::faas {

// ---- Default hooks: vanilla OpenWhisk behaviour ---------------------------------

PlatformHooks::Sizing PlatformHooks::SizeInvocation(const FunctionConfig& fn,
                                                    const std::vector<InputObject>&,
                                                    const std::vector<double>&) {
  return Sizing{fn.booked_memory, false};
}

std::size_t PlatformHooks::PickSandbox(const std::vector<SandboxInfo>& candidates, Bytes,
                                       const std::vector<InputObject>&) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].last_used > candidates[best].last_used) {
      best = i;
    }
  }
  return best;
}

int PlatformHooks::PickWorkerForNewSandbox(const FunctionConfig&,
                                           const std::vector<InputObject>&,
                                           const std::vector<int>& candidates) {
  return candidates.empty() ? -1 : candidates.front();
}

void PlatformHooks::OnSandboxMemoryChange(const SandboxMemoryEvent&) {}

bool PlatformHooks::TryRaiseMemory(int, Bytes, Bytes, SimDuration) { return false; }

void PlatformHooks::OnInvocationComplete(const FunctionConfig&,
                                         const std::vector<InputObject>&,
                                         const std::vector<double>&,
                                         const InvocationRecord&) {}

// ---- Platform ---------------------------------------------------------------------

Platform::Platform(sim::EventLoop* loop, PlatformOptions options, DataService* data,
                   PlatformHooks* hooks, Rng rng)
    : loop_(loop), options_(options), data_(data), hooks_(hooks), rng_(rng) {
  assert(loop_ != nullptr && data_ != nullptr);
  if (hooks_ == nullptr) {
    default_hooks_ = std::make_unique<PlatformHooks>();
    hooks_ = default_hooks_.get();
  }
  worker_reserved_.assign(static_cast<std::size_t>(options_.num_workers), 0);
  worker_alive_.assign(static_cast<std::size_t>(options_.num_workers), true);

  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  trace_ = options_.trace;
  flight_ = options_.flight;
  m_.invocations = metrics_->GetCounter("ofc.platform.invocations");
  m_.cold_starts = metrics_->GetCounter("ofc.platform.cold_starts");
  m_.warm_starts = metrics_->GetCounter("ofc.platform.warm_starts");
  m_.oom_kills = metrics_->GetCounter("ofc.platform.oom_kills");
  m_.oom_rescues = metrics_->GetCounter("ofc.platform.oom_rescues");
  m_.failed_invocations = metrics_->GetCounter("ofc.platform.failed_invocations");
  m_.retries = metrics_->GetCounter("ofc.platform.retries");
  m_.sandbox_reclaims = metrics_->GetCounter("ofc.platform.sandbox_reclaims");
  m_.queued_requests = metrics_->GetCounter("ofc.platform.queued_requests");
  m_.worker_crashes = metrics_->GetCounter("ofc.platform.worker_crashes");
  m_.worker_restores = metrics_->GetCounter("ofc.platform.worker_restores");
  m_.crash_retries = metrics_->GetCounter("ofc.platform.crash_retries");
  m_.input_bytes = metrics_->GetCounter("ofc.platform.input_bytes");
  m_.output_bytes = metrics_->GetCounter("ofc.platform.output_bytes");
  m_.shed_queue_full = metrics_->GetCounter("ofc.overload.shed", "queue_full");
  m_.shed_deadline = metrics_->GetCounter("ofc.overload.shed", "deadline");
  m_.queue_wait_ms = metrics_->GetSeries("ofc.platform.queue_wait_ms");
  m_.startup_ms = metrics_->GetSeries("ofc.platform.startup_ms");
  m_.extract_ms = metrics_->GetSeries("ofc.platform.extract_ms");
  m_.transform_ms = metrics_->GetSeries("ofc.platform.transform_ms");
  m_.load_ms = metrics_->GetSeries("ofc.platform.load_ms");
  m_.total_ms = metrics_->GetSeries("ofc.platform.total_ms");
  if (trace_ != nullptr) {
    trace_->SetProcessName(obs::kPidInvocations, "invocations");
    trace_->SetProcessName(obs::kPidPipelines, "pipelines");
  }
}

Platform::FnMetrics& Platform::FnMetricsFor(const std::string& function) {
  auto it = fn_metrics_.find(function);
  if (it == fn_metrics_.end()) {
    FnMetrics cells;
    cells.invocations = metrics_->GetCounter("ofc.platform.invocations_by_function", function);
    cells.cold_starts = metrics_->GetCounter("ofc.platform.cold_starts_by_function", function);
    cells.total_ms = metrics_->GetSeries("ofc.platform.total_ms_by_function", function);
    it = fn_metrics_.emplace(function, cells).first;
  }
  return it->second;
}

Platform::FnMetrics& Platform::FnMetricsAt(std::uint32_t fn_index, const std::string& function) {
  if (fn_index == 0) {
    return FnMetricsFor(function);
  }
  if (fn_index < fn_metrics_by_index_.size() && fn_metrics_by_index_[fn_index] != nullptr) {
    return *fn_metrics_by_index_[fn_index];
  }
  FnMetrics& cells = FnMetricsFor(function);
  if (fn_index >= fn_metrics_by_index_.size()) {
    fn_metrics_by_index_.resize(fn_index + 1, nullptr);
  }
  fn_metrics_by_index_[fn_index] = &cells;
  return cells;
}

PlatformStats Platform::stats() const {
  PlatformStats stats;
  stats.invocations = m_.invocations->value();
  stats.cold_starts = m_.cold_starts->value();
  stats.warm_starts = m_.warm_starts->value();
  stats.oom_kills = m_.oom_kills->value();
  stats.oom_rescues = m_.oom_rescues->value();
  stats.failed_invocations = m_.failed_invocations->value();
  stats.retries = m_.retries->value();
  stats.sandbox_reclaims = m_.sandbox_reclaims->value();
  stats.queued_requests = m_.queued_requests->value();
  stats.worker_crashes = m_.worker_crashes->value();
  stats.worker_restores = m_.worker_restores->value();
  stats.crash_retries = m_.crash_retries->value();
  stats.shed_requests = m_.shed_queue_full->value() + m_.shed_deadline->value();
  return stats;
}

void Platform::ResetStats() {
  m_.invocations->Reset();
  m_.cold_starts->Reset();
  m_.warm_starts->Reset();
  m_.oom_kills->Reset();
  m_.oom_rescues->Reset();
  m_.failed_invocations->Reset();
  m_.retries->Reset();
  m_.sandbox_reclaims->Reset();
  m_.queued_requests->Reset();
  m_.worker_crashes->Reset();
  m_.worker_restores->Reset();
  m_.crash_retries->Reset();
  m_.input_bytes->Reset();
  m_.output_bytes->Reset();
  m_.shed_queue_full->Reset();
  m_.shed_deadline->Reset();
  m_.queue_wait_ms->Reset();
  m_.startup_ms->Reset();
  m_.extract_ms->Reset();
  m_.transform_ms->Reset();
  m_.load_ms->Reset();
  m_.total_ms->Reset();
  for (auto& [function, cells] : fn_metrics_) {
    cells.invocations->Reset();
    cells.cold_starts->Reset();
    cells.total_ms->Reset();
  }
}

// Phase latencies and per-function breakdowns, recorded for every terminal
// completion (success or failure) exactly once.
void Platform::RecordCompletion(const InvocationRecord& record) {
  m_.startup_ms->Observe(ToMillis(record.startup_time));
  m_.extract_ms->Observe(ToMillis(record.extract_time));
  m_.transform_ms->Observe(ToMillis(record.compute_time));
  m_.load_ms->Observe(ToMillis(record.load_time));
  m_.total_ms->Observe(ToMillis(record.total));
  m_.input_bytes->Add(static_cast<std::uint64_t>(record.input_bytes));
  m_.output_bytes->Add(static_cast<std::uint64_t>(record.output_bytes));
  FnMetrics& fn = FnMetricsAt(record.fn_index, record.function);
  ++*fn.invocations;
  if (record.cold_start) {
    ++*fn.cold_starts;
  }
  fn.total_ms->Observe(ToMillis(record.total));
}

Status Platform::RegisterFunction(FunctionConfig config) {
  if (config.spec.name.empty()) {
    return InvalidArgumentError("function needs a name");
  }
  config.booked_memory =
      std::clamp(config.booked_memory, options_.min_sandbox_memory, options_.max_sandbox_memory);
  config.fn_index = next_fn_index_;
  auto [it, inserted] = functions_.emplace(config.spec.name, std::move(config));
  if (!inserted) {
    return AlreadyExistsError("function already registered: " + it->first);
  }
  ++next_fn_index_;
  return OkStatus();
}

const FunctionConfig* Platform::GetFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

FunctionConfig* Platform::GetMutableFunction(const std::string& name) {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

Bytes Platform::SandboxReserved(int worker) const {
  return worker_reserved_[static_cast<std::size_t>(worker)];
}

Bytes Platform::WorkerFree(int worker) const {
  return options_.worker_memory - worker_reserved_[static_cast<std::size_t>(worker)];
}

std::size_t Platform::NumSandboxes(int worker) const {
  std::size_t count = 0;
  for (const auto& [id, sandbox] : sandboxes_) {
    count += sandbox.worker == worker;
  }
  return count;
}

std::size_t Platform::NumIdleSandboxes(const std::string& function) const {
  std::size_t count = 0;
  for (const auto& [id, sandbox] : sandboxes_) {
    count += sandbox.function == function && !sandbox.busy;
  }
  return count;
}

int Platform::HomeWorker(const FunctionConfig& fn) const {
  const std::size_t hash = std::hash<std::string>{}(fn.spec.name + "|" + fn.tenant);
  return static_cast<int>(hash % static_cast<std::size_t>(options_.num_workers));
}

void Platform::Invoke(const std::string& function, std::vector<InputObject> inputs,
                      std::vector<double> args, InvokeCallback done) {
  auto request = request_pool_.Make();
  request->id = next_invocation_id_++;
  request->function = function;
  request->inputs = std::move(inputs);
  request->args = std::move(args);
  request->done = std::move(done);
  request->arrival = loop_->now();
  request->output_key = "out/" + function + "/" + std::to_string(request->id);
  InvokeInternal(std::move(request));
}

void Platform::InvokeInternal(std::shared_ptr<Request> request) {
  ++*m_.invocations;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kSubmit, request->id,
                    request->pipeline_id, -1, request->function);
  }
  Dispatch(std::move(request));
}

workloads::MediaDescriptor Platform::AggregateMedia(const std::vector<InputObject>& inputs) {
  if (inputs.empty()) {
    workloads::MediaDescriptor desc;
    desc.kind = workloads::InputKind::kText;
    desc.byte_size = KiB(1);
    return desc;
  }
  workloads::MediaDescriptor desc = inputs.front().media;
  Bytes total = 0;
  for (const InputObject& input : inputs) {
    total += input.media.byte_size;
  }
  // Multi-object inputs scale the content volume along the dominant axis.
  if (desc.byte_size > 0 && total != desc.byte_size) {
    const double scale = static_cast<double>(total) / static_cast<double>(desc.byte_size);
    switch (desc.kind) {
      case workloads::InputKind::kImage: {
        desc.width = static_cast<int>(desc.width * std::sqrt(scale));
        desc.height = static_cast<int>(desc.height * std::sqrt(scale));
        break;
      }
      case workloads::InputKind::kAudio:
      case workloads::InputKind::kVideo:
        desc.duration_s *= scale;
        break;
      case workloads::InputKind::kText:
        break;
    }
  }
  desc.byte_size = total;
  return desc;
}

void Platform::Dispatch(std::shared_ptr<Request> request) {
  const FunctionConfig* fn = GetFunction(request->function);
  if (fn != nullptr) {
    request->fn_index = fn->fn_index;
  }
  if (fn == nullptr) {
    InvocationRecord record;
    record.id = request->id;
    record.function = request->function;
    record.failed = true;
    record.final_status = StatusCode::kInternal;
    ++*m_.failed_invocations;
    loop_->ScheduleAfter(0, [request, record] { request->done(record); });
    return;
  }

  if (!request->has_demand) {
    request->demand =
        workloads::ComputeDemand(fn->spec, AggregateMedia(request->inputs), request->args, &rng_);
    request->has_demand = true;
  }

  // Per-function / per-tenant concurrency caps: over-limit requests wait in
  // the queue (subject to depth/deadline shedding) and re-probe as running
  // invocations complete.
  if (OverConcurrencyLimit(*fn)) {
    EnqueueOrShed(std::move(request));
    return;
  }

  PlatformHooks::Sizing sizing;
  if (request->forced_limit > 0) {
    sizing.memory_limit = request->forced_limit;
    sizing.should_cache = false;  // The OOM-retry path runs conservatively.
  } else {
    sizing = hooks_->SizeInvocation(*fn, request->inputs, request->args);
  }
  sizing.memory_limit =
      std::clamp(sizing.memory_limit, options_.min_sandbox_memory, options_.max_sandbox_memory);

  // 1. Prefer an idle warm sandbox of this function (avoids cold start).
  std::vector<SandboxInfo> idle;
  for (const auto& [id, sandbox] : sandboxes_) {
    if (!sandbox.busy && sandbox.function == request->function) {
      idle.push_back(SandboxInfo{sandbox.id, sandbox.worker, sandbox.limit, sandbox.last_used});
    }
  }
  if (!idle.empty()) {
    const std::size_t pick =
        std::min(hooks_->PickSandbox(idle, sizing.memory_limit, request->inputs),
                 idle.size() - 1);
    Sandbox* sandbox = FindSandbox(idle[pick].sandbox_id);
    assert(sandbox != nullptr);
    if (sandbox->keepalive_event != 0) {
      loop_->Cancel(sandbox->keepalive_event);
      sandbox->keepalive_event = 0;
    }
    sandbox->busy = true;
    // The cgroup limit grows within the booked reservation, so no scheduler
    // capacity check applies; the update runs asynchronously (§6.4), costing
    // only dispatch overhead on the critical path.
    SetSandboxLimit(sandbox, sizing.memory_limit);
    ++*m_.warm_starts;
    RunOnSandbox(std::move(request), sandbox, sizing, /*cold=*/false,
                 options_.dispatch_overhead);
    return;
  }

  // 2. Create a new sandbox; the scheduler reserves the booked amount.
  const int worker = PlaceNewSandbox(*fn, request->inputs, fn->booked_memory);
  if (worker < 0) {
    EnqueueOrShed(std::move(request));
    return;
  }
  Sandbox sandbox;
  sandbox.id = next_sandbox_id_++;
  sandbox.function = request->function;
  sandbox.worker = worker;
  sandbox.busy = true;
  sandbox.booked = fn->booked_memory;
  sandbox.limit = 0;
  sandbox.last_used = loop_->now();
  auto [it, inserted] = sandboxes_.emplace(sandbox.id, sandbox);
  assert(inserted);
  worker_reserved_[static_cast<std::size_t>(worker)] += sandbox.booked;
  SetSandboxLimit(&it->second, sizing.memory_limit);
  ++*m_.cold_starts;
  RunOnSandbox(std::move(request), &it->second, sizing, /*cold=*/true,
               options_.dispatch_overhead + options_.cold_start);
}

int Platform::PlaceNewSandbox(const FunctionConfig& fn, const std::vector<InputObject>& inputs,
                              Bytes limit) {
  auto candidates = [&]() {
    std::vector<int> fits;
    const int home = HomeWorker(fn);
    for (int i = 0; i < options_.num_workers; ++i) {
      const int w = (home + i) % options_.num_workers;
      if (worker_alive_[static_cast<std::size_t>(w)] && WorkerFree(w) >= limit) {
        fits.push_back(w);
      }
    }
    return fits;
  };

  std::vector<int> fits = candidates();
  // Reclaim idle sandboxes (globally LRU) until some worker has capacity, as
  // the invoker does under memory pressure.
  while (fits.empty()) {
    std::uint64_t victim = 0;
    SimTime oldest = 0;
    for (const auto& [id, sandbox] : sandboxes_) {
      if (!sandbox.busy && (victim == 0 || sandbox.last_used < oldest)) {
        victim = id;
        oldest = sandbox.last_used;
      }
    }
    if (victim == 0) {
      return -1;
    }
    ++*m_.sandbox_reclaims;
    DestroySandbox(victim);
    fits = candidates();
  }
  const int choice = hooks_->PickWorkerForNewSandbox(fn, inputs, fits);
  if (choice >= 0 && std::find(fits.begin(), fits.end(), choice) != fits.end()) {
    return choice;
  }
  return fits.front();
}

void Platform::SetSandboxLimit(Sandbox* sandbox, Bytes new_limit) {
  if (sandbox->limit == new_limit) {
    return;
  }
  SandboxMemoryEvent event;
  event.worker = sandbox->worker;
  event.booked = sandbox->booked;
  event.old_limit = sandbox->limit;
  event.new_limit = new_limit;
  sandbox->limit = new_limit;
  hooks_->OnSandboxMemoryChange(event);
}

void Platform::RunOnSandbox(std::shared_ptr<Request> request, Sandbox* sandbox,
                            PlatformHooks::Sizing sizing, bool cold, SimDuration startup) {
  InvocationRecord record;
  record.id = request->id;
  record.function = request->function;
  record.fn_index = request->fn_index;
  record.worker = sandbox->worker;
  record.cold_start = cold;
  record.retries = request->retries;
  record.oom_killed = request->oom_killed;
  record.memory_limit = sandbox->limit;
  record.memory_used = request->demand.memory;
  record.should_cache = sizing.should_cache;
  record.startup_time = startup;
  record.output_key = request->output_key;

  request->running_worker = sandbox->worker;
  in_flight_[request->id] = request;
  TrackRunning(*request, +1);
  if (request->first_queued != 0 && !request->queue_wait_recorded) {
    request->queue_wait_recorded = true;
    m_.queue_wait_ms->Observe(ToMillis(loop_->now() - request->first_queued));
  }

  if (Traced(request->id)) {
    const SimTime now = loop_->now();
    if (now > request->arrival) {
      trace_->Span("queued", "dispatch", request->arrival, now - request->arrival,
                   obs::kPidInvocations, request->id);
    }
    trace_->Span(cold ? "cold-start" : "warm-start", "sandbox", now, startup,
                 obs::kPidInvocations, request->id,
                 {{"worker", std::to_string(sandbox->worker)},
                  {"function", request->function}});
  }
  if (FlightOn()) {
    flight_->Record(loop_->now(),
                    cold ? obs::FlightEventKind::kColdStart : obs::FlightEventKind::kWarmStart,
                    request->id, request->pipeline_id, sandbox->worker, request->function);
  }

  const std::uint64_t sandbox_id = sandbox->id;
  const std::uint64_t epoch = request->crash_epoch;
  loop_->ScheduleAfter(startup, [this, request = std::move(request), sandbox_id, epoch,
                                 record]() mutable {
    if (request->crash_epoch != epoch) {
      return;  // The worker crashed during startup; the retry owns the request.
    }
    const workloads::InvocationDemand demand = request->demand;
    ExecutePhases(std::move(request), sandbox_id, record, demand);
  });
}

void Platform::ExecutePhases(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                             InvocationRecord record, workloads::InvocationDemand demand) {
  // ---- Extract phase: read inputs sequentially through the data service. ----
  InvocationContext ctx;
  ctx.invocation_id = request->id;
  ctx.function = request->function;
  ctx.fn_index = request->fn_index;
  ctx.worker = record.worker;
  ctx.pipeline_id = request->pipeline_id;
  ctx.final_stage = request->final_stage;
  ctx.should_cache = record.should_cache;

  // The record accumulates across asynchronous phases; share it rather than
  // copying it into each continuation.
  auto rec = std::make_shared<InvocationRecord>(record);
  auto next_input = std::make_shared<std::size_t>(0);
  const SimTime extract_start = loop_->now();
  const std::uint64_t epoch = request->crash_epoch;

  // Declared as a shared recursive lambda so the chain can continue across
  // asynchronous reads. The lambda holds only a weak self-reference — a strong
  // capture would form a shared_ptr cycle and leak the closure (plus the
  // request it captures) for every invocation.
  auto read_next = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_read_next = read_next;
  *read_next = [this, request, sandbox_id, rec, demand, ctx, next_input, extract_start,
                epoch, weak_read_next]() {
    if (request->crash_epoch != epoch) {
      return;  // Worker crashed mid-flight; a retry owns the request now.
    }
    if (*next_input >= request->inputs.size()) {
      rec->extract_time = loop_->now() - extract_start;
      if (Traced(request->id)) {
        trace_->Span("extract", "phase", extract_start, rec->extract_time,
                     obs::kPidInvocations, request->id);
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kExtract, request->id,
                        request->pipeline_id, rec->worker, request->function,
                        std::to_string(rec->input_bytes) + "B");
      }

      // ---- Memory-limit check (OOM semantics, §5.3.1). ----
      SimDuration compute = demand.compute;
      if (demand.memory > rec->memory_limit) {
        Sandbox* sandbox = FindSandbox(sandbox_id);
        if (sandbox != nullptr &&
            hooks_->TryRaiseMemory(sandbox->worker, sandbox->limit, demand.memory,
                                   demand.compute)) {
          SetSandboxLimit(sandbox, demand.memory);
          rec->memory_limit = sandbox->limit;
          rec->oom_rescued = true;
          ++*m_.oom_rescues;
          if (Traced(request->id)) {
            trace_->Instant("oom-rescue", "oom", loop_->now(), obs::kPidInvocations,
                            request->id);
          }
          if (FlightOn()) {
            flight_->Record(loop_->now(), obs::FlightEventKind::kOomRescue, request->id,
                            request->pipeline_id, rec->worker, request->function);
          }
          compute += options_.cgroup_resize;  // Monitor raises the cap mid-run.
        } else {
          // OOM kill partway through the transform phase.
          ++*m_.oom_kills;
          rec->oom_killed = true;
          loop_->ScheduleAfter(compute / 2,
                               [this, request, sandbox_id, rec, epoch]() mutable {
                                 if (request->crash_epoch != epoch) {
                                   return;
                                 }
                                 if (Traced(request->id)) {
                                   trace_->Instant("oom-kill", "oom", loop_->now(),
                                                   obs::kPidInvocations, request->id);
                                 }
                                 if (FlightOn()) {
                                   flight_->Record(loop_->now(),
                                                   obs::FlightEventKind::kOomKill,
                                                   request->id, request->pipeline_id,
                                                   rec->worker, request->function);
                                 }
                                 FailAndMaybeRetry(std::move(request), sandbox_id, *rec);
                               });
          return;
        }
      }

      // ---- Transform phase. ----
      rec->compute_time = compute;
      loop_->ScheduleAfter(compute, [this, request, sandbox_id, rec, demand, ctx,
                                     epoch]() mutable {
        if (request->crash_epoch != epoch) {
          return;
        }
        if (Traced(request->id)) {
          trace_->Span("transform", "phase", loop_->now() - rec->compute_time,
                       rec->compute_time, obs::kPidInvocations, request->id);
        }
        if (FlightOn()) {
          flight_->Record(loop_->now(), obs::FlightEventKind::kTransform, request->id,
                          request->pipeline_id, rec->worker, request->function);
        }
        // ---- Load phase: write the output object. ----
        const SimTime load_start = loop_->now();
        const FunctionConfig* fn = GetFunction(request->function);
        workloads::MediaDescriptor out_media =
            fn != nullptr ? workloads::OutputMedia(fn->spec, AggregateMedia(request->inputs),
                                                   demand.output_size)
                          : workloads::MediaDescriptor{};
        rec->output_media = out_media;
        rec->output_bytes = demand.output_size;
        data_->Write(ctx, request->output_key, demand.output_size, out_media,
                     [this, request, sandbox_id, rec, load_start,
                      epoch](Status status) mutable {
                       if (request->crash_epoch != epoch) {
                         return;
                       }
                       rec->load_time = loop_->now() - load_start;
                       if (Traced(request->id)) {
                         trace_->Span("load", "phase", load_start, rec->load_time,
                                      obs::kPidInvocations, request->id);
                       }
                       if (FlightOn()) {
                         flight_->Record(loop_->now(), obs::FlightEventKind::kLoad,
                                         request->id, request->pipeline_id, rec->worker,
                                         request->output_key,
                                         std::to_string(rec->output_bytes) + "B");
                       }
                       if (!status.ok()) {
                         FailAndMaybeRetry(std::move(request), sandbox_id, *rec);
                         return;
                       }
                       FinishInvocation(std::move(request), sandbox_id, *rec);
                     });
      });
      return;
    }
    const std::string& key = request->inputs[*next_input].key;
    ++*next_input;
    // The read callback holds the strong reference that keeps the chain alive
    // across the asynchronous hop.
    auto self = weak_read_next.lock();
    assert(self != nullptr);
    data_->Read(ctx, key, [this, rec, self, key](Result<Bytes> size) {
      if (!size.ok()) {
        OFC_LOG(Warning) << "read failed for " << key << ": " << size.status().ToString();
      } else {
        rec->input_bytes += *size;
      }
      (*self)();  // The epoch guard at its head covers crashes.
    });
  };
  (*read_next)();
}

void Platform::CrashWorker(int worker) {
  if (!worker_alive_[static_cast<std::size_t>(worker)]) {
    return;
  }
  worker_alive_[static_cast<std::size_t>(worker)] = false;
  ++*m_.worker_crashes;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kWorkerCrash, 0, 0, worker);
  }

  // The worker's sandboxes are gone (busy ones included).
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (it->second.worker != worker) {
      ++it;
      continue;
    }
    Sandbox& sandbox = it->second;
    if (sandbox.keepalive_event != 0) {
      loop_->Cancel(sandbox.keepalive_event);
    }
    SetSandboxLimit(&sandbox, 0);
    worker_reserved_[static_cast<std::size_t>(worker)] -= sandbox.booked;
    it = sandboxes_.erase(it);
  }

  // Abort in-flight invocations on the worker and re-dispatch them elsewhere
  // (§6.1: the platform retries failed invocations; functions are expected to
  // have idempotent side effects).
  std::vector<std::shared_ptr<Request>> victims;
  for (const auto& [id, request] : in_flight_) {
    if (request->running_worker == worker) {
      victims.push_back(request);
    }
  }
  for (auto& request : victims) {
    in_flight_.erase(request->id);
    TrackRunning(*request, -1);
    request->crash_epoch = ++crash_epoch_;  // Invalidates stale continuations.
    request->running_worker = -1;
    ++request->retries;
    ++*m_.crash_retries;
    ++*m_.retries;
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kRetry, request->id,
                      request->pipeline_id, worker, request->function, "worker_crash");
    }
    loop_->ScheduleAfter(options_.retry_delay, [this, request]() mutable {
      Dispatch(std::move(request));
    });
  }
  DrainWaitQueue();
}

void Platform::RestoreWorker(int worker) {
  if (worker_alive_[static_cast<std::size_t>(worker)]) {
    return;
  }
  worker_alive_[static_cast<std::size_t>(worker)] = true;
  ++*m_.worker_restores;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kWorkerRestore, 0, 0, worker);
  }
  DrainWaitQueue();
}

void Platform::FailAndMaybeRetry(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                                 InvocationRecord record) {
  in_flight_.erase(request->id);
  TrackRunning(*request, -1);
  ReleaseSandbox(sandbox_id);
  const FunctionConfig* fn = GetFunction(request->function);
  if (record.oom_killed && request->retries == 0 && fn != nullptr) {
    // §5.3.1: immediate retry with the tenant-booked limit.
    ++*m_.retries;
    request->retries = 1;
    request->oom_killed = true;
    request->forced_limit = fn->booked_memory;
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kRetry, request->id,
                      request->pipeline_id, record.worker, request->function, "oom");
    }
    loop_->ScheduleAfter(options_.retry_delay,
                         [this, request = std::move(request)]() mutable {
                           Dispatch(std::move(request));
                         });
    return;
  }
  record.failed = true;
  record.final_status = StatusCode::kInternal;
  record.total = loop_->now() - request->arrival;
  ++*m_.failed_invocations;
  RecordCompletion(record);
  if (Traced(request->id)) {
    trace_->Span(record.function, "invocation", request->arrival, record.total,
                 obs::kPidInvocations, request->id, {{"failed", "true"}});
  }
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kFail, request->id,
                    request->pipeline_id, record.worker, request->function,
                    record.oom_killed ? "oom" : "error");
  }
  if (fn != nullptr) {
    hooks_->OnInvocationComplete(*fn, request->inputs, request->args, record);
  }
  request->done(record);
  DrainWaitQueue();
}

void Platform::FinishInvocation(std::shared_ptr<Request> request, std::uint64_t sandbox_id,
                                InvocationRecord record) {
  record.total = loop_->now() - request->arrival;
  in_flight_.erase(request->id);
  TrackRunning(*request, -1);
  ReleaseSandbox(sandbox_id);
  RecordCompletion(record);
  if (Traced(request->id)) {
    trace_->Span(record.function, "invocation", request->arrival, record.total,
                 obs::kPidInvocations, request->id,
                 {{"worker", std::to_string(record.worker)},
                  {"cold_start", record.cold_start ? "true" : "false"}});
  }
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kComplete, request->id,
                    request->pipeline_id, record.worker, request->function);
  }
  const FunctionConfig* fn = GetFunction(request->function);
  if (fn != nullptr) {
    hooks_->OnInvocationComplete(*fn, request->inputs, request->args, record);
  }
  request->done(record);
  DrainWaitQueue();
}

void Platform::ReleaseSandbox(std::uint64_t sandbox_id) {
  Sandbox* sandbox = FindSandbox(sandbox_id);
  if (sandbox == nullptr) {
    return;
  }
  sandbox->busy = false;
  sandbox->last_used = loop_->now();
  ArmKeepAlive(sandbox);
  // A newly idle sandbox is reclaimable capacity: re-probe the wait queue here,
  // not only on completion. The OOM-retry path releases its sandbox and returns
  // without completing anything — before this drain, a queued request whose
  // function's sandboxes had all been reclaimed could wait out that whole
  // window (or forever, if the retry itself kept the worker saturated).
  DrainWaitQueue();
}

void Platform::ArmKeepAlive(Sandbox* sandbox) {
  if (sandbox->keepalive_event != 0) {
    loop_->Cancel(sandbox->keepalive_event);
  }
  const std::uint64_t id = sandbox->id;
  sandbox->keepalive_event =
      loop_->ScheduleAfter(options_.keep_alive, [this, id] { DestroySandbox(id); });
}

void Platform::DestroySandbox(std::uint64_t sandbox_id) {
  auto it = sandboxes_.find(sandbox_id);
  if (it == sandboxes_.end()) {
    return;
  }
  Sandbox& sandbox = it->second;
  assert(!sandbox.busy);
  if (sandbox.keepalive_event != 0) {
    loop_->Cancel(sandbox.keepalive_event);
  }
  SetSandboxLimit(&sandbox, 0);
  worker_reserved_[static_cast<std::size_t>(sandbox.worker)] -= sandbox.booked;
  sandboxes_.erase(it);
  DrainWaitQueue();
}

Platform::Sandbox* Platform::FindSandbox(std::uint64_t id) {
  auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : &it->second;
}

void Platform::DrainWaitQueue() {
  // Scheduled asynchronously: DestroySandbox can fire inside PlaceNewSandbox's
  // reclaim loop, and a synchronous drain would steal the capacity it is in the
  // middle of freeing.
  if (wait_queue_.empty() || drain_scheduled_) {
    return;
  }
  drain_scheduled_ = true;
  loop_->ScheduleAfter(0, [this] {
    drain_scheduled_ = false;
    std::deque<std::shared_ptr<Request>> pending;
    pending.swap(wait_queue_);
    for (auto& request : pending) {
      Dispatch(std::move(request));
    }
  });
}

// ---- Overload protection ------------------------------------------------------------

void Platform::EnqueueOrShed(std::shared_ptr<Request> request) {
  const SimTime now = loop_->now();
  if (request->first_queued == 0) {
    // First admission decision: the depth gate applies to new entrants only —
    // a drain re-probe must not shed a request that was already admitted.
    if (options_.max_queue_depth > 0 && wait_queue_.size() >= options_.max_queue_depth) {
      Shed(std::move(request), m_.shed_queue_full, "queue_full");
      return;
    }
    request->first_queued = now;
    if (options_.queue_deadline > 0) {
      request->queue_deadline_at = now + options_.queue_deadline;
    }
  }
  if (request->queue_deadline_at != 0) {
    if (now >= request->queue_deadline_at) {
      // Re-entering the queue at/after the deadline: the timer event may have
      // fired while this request was mid-drain, so shed here instead. Exactly
      // one of the timer and this check sheds in every interleaving (the timer
      // only acts on requests it finds queued).
      Shed(std::move(request), m_.shed_deadline, "deadline");
      return;
    }
    // (Re-)arm the deadline for this queue residence. Duplicate timers for the
    // same id are harmless no-ops once the request has been shed or dispatched.
    const std::uint64_t id = request->id;
    loop_->ScheduleAt(request->queue_deadline_at, [this, id] { ShedExpired(id); });
  }
  ++*m_.queued_requests;
  if (FlightOn()) {
    flight_->Record(now, obs::FlightEventKind::kQueue, request->id, request->pipeline_id, -1,
                    request->function);
  }
  wait_queue_.push_back(std::move(request));
}

void Platform::ShedExpired(std::uint64_t request_id) {
  for (auto it = wait_queue_.begin(); it != wait_queue_.end(); ++it) {
    if ((*it)->id == request_id) {
      std::shared_ptr<Request> request = std::move(*it);
      wait_queue_.erase(it);
      Shed(std::move(request), m_.shed_deadline, "deadline");
      return;
    }
  }
}

// Completes a request that never ran: counted as failed with an explicit
// kResourceExhausted status so callers can tell shedding from execution
// failures. Phase series stay clean (nothing executed) and hooks are not
// notified (a shed carries no execution feedback for the trainer), but the
// queue wait is observed — it is the overload signal of interest.
void Platform::Shed(std::shared_ptr<Request> request, obs::Counter* cell,
                    const char* reason) {
  ++*cell;
  ++*m_.failed_invocations;
  if (request->first_queued != 0 && !request->queue_wait_recorded) {
    request->queue_wait_recorded = true;
    m_.queue_wait_ms->Observe(ToMillis(loop_->now() - request->first_queued));
  }
  InvocationRecord record;
  record.id = request->id;
  record.function = request->function;
  record.failed = true;
  record.shed = true;
  record.final_status = StatusCode::kResourceExhausted;
  record.retries = request->retries;
  record.oom_killed = request->oom_killed;
  record.total = loop_->now() - request->arrival;
  record.output_key = request->output_key;
  if (Traced(request->id)) {
    trace_->Instant(std::string("shed-") + reason, "overload", loop_->now(),
                    obs::kPidInvocations, request->id,
                    {{"function", request->function}});
  }
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kShed, request->id,
                    request->pipeline_id, -1, request->function, reason);
  }
  // Asynchronous completion, matching every other terminal path: Shed can fire
  // synchronously inside Invoke(), and callers must not observe completion
  // before Invoke() returns.
  loop_->ScheduleAfter(0, [request = std::move(request), record] { request->done(record); });
}

bool Platform::OverConcurrencyLimit(const FunctionConfig& fn) const {
  if (options_.max_concurrency_per_function > 0) {
    const auto it = running_per_function_.find(fn.spec.name);
    if (it != running_per_function_.end() &&
        it->second >= options_.max_concurrency_per_function) {
      return true;
    }
  }
  if (options_.max_concurrency_per_tenant > 0) {
    const auto it = running_per_tenant_.find(fn.tenant);
    if (it != running_per_tenant_.end() &&
        it->second >= options_.max_concurrency_per_tenant) {
      return true;
    }
  }
  return false;
}

void Platform::TrackRunning(const Request& request, int delta) {
  if (options_.max_concurrency_per_function <= 0 &&
      options_.max_concurrency_per_tenant <= 0) {
    return;  // No limits configured; skip the bookkeeping entirely.
  }
  running_per_function_[request.function] += delta;
  const FunctionConfig* fn = GetFunction(request.function);
  if (fn != nullptr) {
    running_per_tenant_[fn->tenant] += delta;
  }
}

// ---- Pipelines ---------------------------------------------------------------------

void Platform::InvokePipeline(const workloads::PipelineSpec& spec,
                              std::vector<InputObject> chunks, PipelineCallback done) {
  struct PipeState {
    workloads::PipelineSpec spec;
    PipelineRecord record;
    std::vector<InputObject> objects;
    std::size_t stage = 0;
    SimTime start = 0;
    PipelineCallback done;
  };
  auto state = std::make_shared<PipeState>();
  state->spec = spec;
  state->record.id = next_pipeline_id_++;
  state->record.pipeline = spec.name;
  state->objects = std::move(chunks);
  state->start = loop_->now();
  state->done = std::move(done);
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kPipelineStart, 0, state->record.id,
                    -1, spec.name, std::to_string(spec.stages.size()) + " stages");
  }

  // Declared shared so stage completion can recursively launch the next stage.
  // Weak self-capture: the task-completion callbacks hold the strong
  // references, so the closure is freed when the pipeline finishes (a strong
  // capture would leak it, and the whole pipeline state, per run).
  auto run_stage = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_run_stage = run_stage;
  *run_stage = [this, state, weak_run_stage]() {
    if (state->stage >= state->spec.stages.size()) {
      state->record.total = loop_->now() - state->start;
      if (trace_ != nullptr && trace_->Sampled(state->record.id)) {
        trace_->Span(state->record.pipeline, "pipeline", state->start, state->record.total,
                     obs::kPidPipelines, state->record.id,
                     {{"tasks", std::to_string(state->record.num_tasks)}});
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kPipelineEnd, 0,
                        state->record.id, -1, state->record.pipeline,
                        state->record.failed ? "failed" : "ok");
      }
      data_->OnPipelineComplete(state->record.id);
      state->done(state->record);
      return;
    }
    const workloads::PipelineStage& stage = state->spec.stages[state->stage];
    const FunctionConfig* fn = GetFunction(stage.function);
    if (fn == nullptr || state->objects.empty()) {
      state->record.failed = true;
      state->record.total = loop_->now() - state->start;
      state->done(state->record);
      return;
    }

    // Partition the previous stage's objects across this stage's tasks.
    const std::size_t num_tasks =
        stage.fixed_tasks > 0
            ? std::min<std::size_t>(static_cast<std::size_t>(stage.fixed_tasks),
                                    state->objects.size())
            : state->objects.size();
    std::vector<std::vector<InputObject>> task_inputs(num_tasks);
    for (std::size_t i = 0; i < state->objects.size(); ++i) {
      task_inputs[i % num_tasks].push_back(state->objects[i]);
    }

    auto outputs = std::make_shared<std::vector<InputObject>>(num_tasks);
    auto remaining = std::make_shared<std::size_t>(num_tasks);
    const bool final_stage = state->stage + 1 == state->spec.stages.size();
    for (std::size_t t = 0; t < num_tasks; ++t) {
      auto request = request_pool_.Make();
      request->id = next_invocation_id_++;
      request->function = stage.function;
      request->inputs = std::move(task_inputs[t]);
      request->args = workloads::SampleArgs(fn->spec, rng_);
      request->arrival = loop_->now();
      request->pipeline_id = state->record.id;
      request->final_stage = final_stage;
      request->output_key = "pipe/" + std::to_string(state->record.id) + "/s" +
                            std::to_string(state->stage) + "/t" + std::to_string(t);
      auto self = weak_run_stage.lock();
      assert(self != nullptr);
      request->done = [this, state, outputs, remaining, t, self](
                          const InvocationRecord& record) {
        state->record.extract_time += record.extract_time;
        state->record.compute_time += record.compute_time;
        state->record.load_time += record.load_time;
        state->record.failed |= record.failed;
        ++state->record.num_tasks;
        (*outputs)[t] = InputObject{record.output_key, record.output_media};
        if (--*remaining == 0) {
          state->objects = std::move(*outputs);
          ++state->stage;
          (*self)();
        }
      };
      InvokeInternal(std::move(request));
    }
  };
  (*run_stage)();
}

}  // namespace ofc::faas
