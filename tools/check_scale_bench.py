#!/usr/bin/env python3
"""Perf-smoke gate: compare a BENCH_scale.json against the checked-in floor.

Usage:
  tools/check_scale_bench.py BENCH_scale.json [--floor bench/scale_floor.json]
                             [--tolerance 0.20]

Fails (exit 1) when:
  * events_per_sec regresses more than `tolerance` below the floor's
    min_events_per_sec;
  * the optimized event loop's speedup over the legacy snapshot falls below
    the floor's min_loop_speedup (when the bench ran the comparison);
  * exactly-once accounting is violated (fired != completed);
  * peak RSS exceeds the floor's max_peak_rss_mb (scaled runs must stay
    memory-bounded).

The floor file is intentionally conservative: it encodes the slowest machine
class CI runs on, not the best local number. Update it with a justified commit
when the harness or hardware legitimately changes.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_scale.json produced by scale_stress")
    parser.add_argument("--floor", default="bench/scale_floor.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression below the floor")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)
    with open(args.floor) as f:
        floor = json.load(f)

    failures = []

    eps = bench.get("events_per_sec", 0.0)
    min_eps = floor.get("min_events_per_sec", 0.0)
    allowed = min_eps * (1.0 - args.tolerance)
    if eps < allowed:
        failures.append(
            f"events_per_sec {eps:.0f} is below the floor {min_eps:.0f} "
            f"(-{args.tolerance:.0%} tolerance => {allowed:.0f})")

    compare = bench.get("event_loop_compare", {})
    speedup = compare.get("speedup", 0.0)
    legacy = compare.get("legacy_events_per_sec", 0.0)
    min_speedup = floor.get("min_loop_speedup", 0.0)
    if legacy > 0 and speedup < min_speedup:
        failures.append(
            f"event-loop speedup {speedup:.2f}x is below the required "
            f"{min_speedup:.2f}x over the legacy snapshot")

    fired = bench.get("invocations_fired", 0)
    completed = bench.get("invocations_completed", 0)
    if fired != completed:
        failures.append(f"exactly-once violation: fired={fired} completed={completed}")

    rss = bench.get("peak_rss_mb", 0.0)
    max_rss = floor.get("max_peak_rss_mb")
    if max_rss is not None and rss > max_rss:
        failures.append(f"peak RSS {rss:.1f} MiB exceeds the {max_rss:.1f} MiB bound")

    print(f"scale bench: {eps:.0f} events/sec (floor {min_eps:.0f}), "
          f"loop speedup {speedup:.2f}x (min {min_speedup:.2f}x), "
          f"{completed} invocations, peak RSS {rss:.1f} MiB")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: within the perf floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
