#!/usr/bin/env python3
"""End-to-end smoke test for ofc-sim's observability surface.

Drives the built CLI binary through the telemetry paths CI cares about:

  1. a scraped run with SLOs + flight recorder writes timeline/health/flight
     JSON that parses and passes tools/check_timeline.py's structural checks;
  2. unwritable output paths fail loudly — nonzero exit and a stderr line
     naming the path — for every artifact flag (never a silent exit 0);
  3. the negative post-mortem path: --inject-breach-at trips a SIM_ASSERT and
     --dump-on-assert captures a flight dump naming the breach, with the
     process exiting nonzero.

Usage: obs_smoke_test.py <path-to-ofc-sim> [--keep-artifacts DIR]
Exit status: 0 clean, 1 failure, 2 usage error.
"""

import json
import os
import subprocess
import sys
import tempfile

SLO_SPEC = ("warm=lat:ofc.platform.total_ms:p99:250;"
            "shed=rate:ofc.overload.shed/ofc.platform.invocations:0.005")

_failures = []


def fail(msg):
    _failures.append(msg)
    print(f"obs_smoke_test: FAIL: {msg}", file=sys.stderr)


def run(binary, args, **kwargs):
    return subprocess.run([binary] + args, capture_output=True, text=True,
                          timeout=300, **kwargs)


def check_scraped_run(binary, outdir):
    timeline = os.path.join(outdir, "timeline.json")
    health = os.path.join(outdir, "health.json")
    flight = os.path.join(outdir, "flight.json")
    proc = run(binary, [
        "--mode=ofc", "--duration-min=5",
        "--scrape-interval-s=10", f"--timeline-json={timeline}",
        f"--slo={SLO_SPEC}", f"--health-json={health}",
        "--flight-recorder", f"--flight-json={flight}",
    ])
    if proc.returncode != 0:
        fail(f"scraped run exited {proc.returncode}: {proc.stderr.strip()}")
        return
    checker = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_timeline.py")
    result = subprocess.run(
        [sys.executable, checker, f"--timeline={timeline}",
         f"--health={health}", f"--flight={flight}", "--min-windows=5",
         "--expect-counter=ofc.platform.invocations"],
        capture_output=True, text=True, timeout=60)
    if result.returncode != 0:
        fail(f"check_timeline rejected the artifacts:\n{result.stderr}")


def check_unwritable_outputs(binary):
    bad = "/nonexistent-ofc-dir/out.json"
    for flag in ("--metrics-json", "--metrics-csv", "--trace-json",
                 "--timeline-json", "--health-json", "--flight-json"):
        proc = run(binary, ["--mode=ofc", "--duration-min=1",
                            f"{flag}={bad}"])
        if proc.returncode == 0:
            fail(f"{flag}={bad} exited 0; expected a loud failure")
        if bad not in proc.stderr:
            fail(f"{flag}: stderr does not name the unwritable path: "
                 f"{proc.stderr.strip()!r}")


def check_breach_dump(binary, outdir):
    dump = os.path.join(outdir, "breach_dump.json")
    proc = run(binary, ["--mode=ofc", "--duration-min=2",
                        "--flight-recorder", "--inject-breach-at=30",
                        f"--dump-on-assert={dump}"])
    if proc.returncode == 0:
        fail("--inject-breach-at run exited 0; the seeded breach must abort")
    if not os.path.exists(dump):
        fail("--dump-on-assert produced no dump file for the seeded breach")
        return
    try:
        with open(dump, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except ValueError as e:
        fail(f"breach dump is not valid JSON: {e}")
        return
    if "injected invariant breach" not in doc.get("reason", ""):
        fail(f"breach dump reason does not name the breach: "
             f"{doc.get('reason')!r}")
    if not doc.get("events"):
        fail("breach dump carries no flight events (no causal chain)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    if not os.path.exists(binary):
        print(f"obs_smoke_test: no such binary: {binary}", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="ofc-obs-smoke-") as outdir:
        check_scraped_run(binary, outdir)
        check_unwritable_outputs(binary)
        check_breach_dump(binary, outdir)
    if _failures:
        print(f"obs_smoke_test: {len(_failures)} failure(s)", file=sys.stderr)
        return 1
    print("obs_smoke_test: all observability CLI paths behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
