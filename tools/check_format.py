#!/usr/bin/env python3
"""Format gate for the OFC tree.

With clang-format on PATH: runs `clang-format --dry-run -Werror` over every
tracked C++ source (the authoritative check, used in CI).

Without it (the dev container ships only gcc): falls back to mechanical
whitespace checks that clang-format would also enforce — tabs, trailing
whitespace, CRLF line endings, missing final newline — so the target still
catches the common regressions locally.

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import os
import shutil
import subprocess
import sys

SOURCE_DIRS = ("src", "tools", "tests", "bench", "examples")
EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
SKIP_FRAGMENT = os.path.join("simlint", "testdata")


def find_sources(root):
    files = []
    for subdir in SOURCE_DIRS:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            if SKIP_FRAGMENT in dirpath:
                continue
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def run_clang_format(clang_format, files):
    result = subprocess.run(
        [clang_format, "--dry-run", "-Werror"] + files,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        sys.stderr.write("check_format: clang-format found violations\n")
        return 1
    print(f"check_format: {len(files)} files clean (clang-format)")
    return 0


def run_fallback(files):
    problems = []
    for path in files:
        with open(path, "rb") as f:
            raw = f.read()
        if b"\r" in raw:
            problems.append(f"{path}: CRLF line ending")
        if raw and not raw.endswith(b"\n"):
            problems.append(f"{path}: missing final newline")
        for number, line in enumerate(raw.split(b"\n"), start=1):
            if b"\t" in line:
                problems.append(f"{path}:{number}: tab character")
            if line != line.rstrip():
                problems.append(f"{path}:{number}: trailing whitespace")
    for problem in problems:
        sys.stderr.write(problem + "\n")
    if problems:
        sys.stderr.write(f"check_format: {len(problems)} violation(s) (fallback checks)\n")
        return 1
    print(f"check_format: {len(files)} files clean (fallback whitespace checks; "
          "install clang-format for the full check)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repo root")
    args = parser.parse_args()

    files = find_sources(args.root)
    if not files:
        sys.stderr.write("check_format: no sources found under --root\n")
        return 2
    clang_format = shutil.which("clang-format")
    if clang_format:
        return run_clang_format(clang_format, files)
    return run_fallback(files)


if __name__ == "__main__":
    sys.exit(main())
