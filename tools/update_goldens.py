#!/usr/bin/env python3
"""Regenerate the exporter golden files under tests/testdata/goldens/.

The golden scenario lives in tests/golden_test.cpp; this script just builds
that binary and re-runs it with OFC_UPDATE_GOLDENS=1, which makes each test
rewrite its golden in place instead of comparing. Review the resulting diff
before committing — a golden churn you cannot explain is a regression, not a
blessing.

Usage:
  tools/update_goldens.py [--build-dir build]
"""

import argparse
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDENS = REPO_ROOT / "tests" / "testdata" / "goldens"


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd))
    subprocess.run(cmd, check=True, **kwargs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (configured already or configurable)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = REPO_ROOT / build_dir
    if not (build_dir / "CMakeCache.txt").exists():
        run(["cmake", "-B", str(build_dir), "-S", str(REPO_ROOT)])
    run(["cmake", "--build", str(build_dir), "--target", "golden_test",
         "-j", str(os.cpu_count() or 2)])

    env = dict(os.environ, OFC_UPDATE_GOLDENS="1")
    run([str(build_dir / "tests" / "golden_test")], env=env)

    print(f"\ngoldens rewritten under {GOLDENS}; review with:")
    print(f"  git diff -- {GOLDENS.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
