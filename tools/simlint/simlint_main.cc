// simlint CLI: lints the repo's C++ sources for determinism hazards.
//
// Usage:
//   simlint --root <repo-root> [subdir...]
//
// Default subdirs: src bench tests tools examples. Fixture files under
// tools/simlint/testdata/ are always skipped (they exist to violate the
// rules). Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/simlint/lint.h"

namespace ofc::simlint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsFixture(const std::string& relative) {
  return relative.find("simlint/testdata") != std::string::npos;
}

int Run(const std::string& root, const std::vector<std::string>& subdirs) {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  for (const std::string& subdir : subdirs) {
    const fs::path base = fs::path(root) / subdir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "simlint: no such directory: %s\n", base.string().c_str());
      return 2;
    }
    // Collect-then-sort: directory_iterator order is filesystem-dependent and
    // the report itself must be deterministic.
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      const std::string relative = fs::relative(path, root).string();
      if (IsFixture(relative)) {
        continue;
      }
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "simlint: cannot read %s\n", path.string().c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      ++files_scanned;
      for (Finding& finding : LintSource(relative, buffer.str())) {
        findings.push_back(std::move(finding));
      }
    }
  }
  for (const Finding& finding : findings) {
    std::fprintf(stderr, "%s\n", FormatFinding(finding).c_str());
  }
  std::fprintf(stderr, "simlint: %zu files scanned, %zu finding(s)\n", files_scanned,
               findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace ofc::simlint

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strncmp(argv[i], "--root=", 7) == 0) {
      root = argv[i] + 7;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: simlint --root <dir> [subdir...]\n");
      return 2;
    } else {
      subdirs.emplace_back(argv[i]);
    }
  }
  if (subdirs.empty()) {
    subdirs = {"src", "bench", "tests", "tools", "examples"};
  }
  return ofc::simlint::Run(root, subdirs);
}
