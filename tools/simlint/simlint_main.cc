// simlint CLI: project-aware static analysis for the repo's C++ sources.
//
// Usage:
//   simlint --root <repo-root> [subdir...] [flags]
//
// Default subdirs: src bench tests tools examples. Fixture files under
// tools/simlint/testdata/ are always skipped (they exist to violate the
// rules).
//
// Flags:
//   --json[=PATH]        Machine-readable findings (stdout when no PATH);
//                        byte-deterministic across runs.
//   --github             GitHub `::error file=...` annotations for new
//                        findings (stdout).
//   --baseline=PATH      Baseline file of accepted findings. Defaults to
//                        <root>/tools/simlint/baseline.json when it exists.
//   --write-baseline     Rewrite the baseline to cover all current findings
//                        (justifications left empty for the author to fill).
//   --list-metrics       Print the metric inventory as markdown table rows
//                        (paste into DESIGN.md §7) and exit.
//   --stats              Per-phase timing + counts on stderr.
//   --budget-ms=N        Exit nonzero when the whole run exceeds N ms (the
//                        lint must never become the bottleneck).
//
// Exit status: 0 clean (baselined findings allowed), 1 new findings or
// baseline errors or budget exceeded, 2 usage/IO error.
#include <algorithm>
#include <chrono>  // simlint: allow(wall-clock) -- lint driver self-timing for --stats/--budget-ms, not simulation state
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/simlint/lint.h"
#include "tools/simlint/project.h"

namespace ofc::simlint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsFixture(const std::string& relative) {
  return relative.find("simlint/testdata") != std::string::npos;
}

// '/'-separated root-relative path (findings must not depend on the host OS).
std::string RelativePath(const fs::path& path, const std::string& root) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

struct Args {
  std::string root = ".";
  std::vector<std::string> subdirs;
  bool json = false;
  std::string json_path;  // Empty = stdout.
  bool github = false;
  std::string baseline_path;  // Empty = default when present.
  bool write_baseline = false;
  bool list_metrics = false;
  bool stats = false;
  long budget_ms = 0;
};

int Run(const Args& args) {
  using Clock = std::chrono::steady_clock;  // simlint: allow(wall-clock) -- driver timing
  const auto t0 = Clock::now();

  std::vector<std::string> subdirs = args.subdirs;
  if (subdirs.empty()) {
    subdirs = {"src", "bench", "tests", "tools", "examples"};
  }

  // Collect-then-sort: directory_iterator order is filesystem-dependent and
  // the report itself must be byte-deterministic.
  std::vector<SourceFile> files;
  bool scanned_src = false;
  for (const std::string& subdir : subdirs) {
    const fs::path base = fs::path(args.root) / subdir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "simlint: no such directory: %s\n", base.string().c_str());
      return 2;
    }
    scanned_src = scanned_src || subdir == "src";
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      const std::string relative = RelativePath(path, args.root);
      if (IsFixture(relative)) {
        continue;
      }
      SourceFile file;
      file.path = relative;
      if (!ReadFile(path, &file.content)) {
        std::fprintf(stderr, "simlint: cannot read %s\n", path.string().c_str());
        return 2;
      }
      files.push_back(std::move(file));
    }
  }

  ProjectOptions options;
  options.project_rules = scanned_src;
  const fs::path design_path = fs::path(args.root) / "DESIGN.md";
  if (scanned_src && fs::exists(design_path)) {
    if (!ReadFile(design_path, &options.design_md)) {
      std::fprintf(stderr, "simlint: cannot read %s\n", design_path.string().c_str());
      return 2;
    }
  }

  const auto t_read = Clock::now();
  ProjectResult result = AnalyzeProject(files, options);
  const auto t_analyze = Clock::now();

  if (args.list_metrics) {
    std::fputs("| metric | kind | registered in |\n|---|---|---|\n", stdout);
    std::fputs(MetricsMarkdown(result).c_str(), stdout);
    return 0;
  }

  // ---- Baseline --------------------------------------------------------------
  fs::path baseline_path;
  if (!args.baseline_path.empty()) {
    baseline_path = args.baseline_path;
  } else {
    const fs::path candidate = fs::path(args.root) / "tools" / "simlint" / "baseline.json";
    if (fs::exists(candidate)) {
      baseline_path = candidate;
    }
  }
  if (args.write_baseline) {
    const fs::path out_path = baseline_path.empty()
                                  ? fs::path(args.root) / "tools" / "simlint" / "baseline.json"
                                  : baseline_path;
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n", out_path.string().c_str());
      return 2;
    }
    out << SerializeBaseline(BaselineFromFindings(result));
    std::fprintf(stderr,
                 "simlint: wrote %zu baseline entr%s to %s; fill in every "
                 "justification or the next run fails baseline-unjustified\n",
                 result.findings.size(), result.findings.size() == 1 ? "y" : "ies",
                 out_path.string().c_str());
    return 0;
  }
  if (!baseline_path.empty()) {
    std::string content;
    if (!ReadFile(baseline_path, &content)) {
      std::fprintf(stderr, "simlint: cannot read baseline %s\n",
                   baseline_path.string().c_str());
      return 2;
    }
    Baseline baseline;
    std::string error;
    if (!ParseBaseline(content, &baseline, &error)) {
      std::fprintf(stderr, "simlint: malformed baseline %s: %s\n",
                   baseline_path.string().c_str(), error.c_str());
      return 2;
    }
    ApplyBaseline(baseline, RelativePath(baseline_path, args.root), &result);
  }

  // ---- Output ----------------------------------------------------------------
  std::size_t new_findings = 0;
  for (const Finding& finding : result.findings) {
    if (!finding.baselined) {
      ++new_findings;
    }
    std::fprintf(stderr, "%s\n", FormatFinding(finding).c_str());
  }
  std::fprintf(stderr, "simlint: %zu files scanned, %zu finding(s), %zu baselined\n",
               result.files_scanned, result.findings.size(),
               result.findings.size() - new_findings);

  if (args.json) {
    const std::string json = FindingsJson(result);
    if (args.json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(args.json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "simlint: cannot write %s\n", args.json_path.c_str());
        return 2;
      }
      out << json;
    }
  }
  if (args.github) {
    std::fputs(GithubAnnotations(result).c_str(), stdout);
  }

  const auto t_end = Clock::now();
  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
  };
  if (args.stats) {
    std::fprintf(stderr,
                 "simlint --stats: %zu files | read %lld ms | analyze %lld ms | "
                 "report %lld ms | total %lld ms\n",
                 result.files_scanned, static_cast<long long>(ms(t0, t_read)),
                 static_cast<long long>(ms(t_read, t_analyze)),
                 static_cast<long long>(ms(t_analyze, t_end)),
                 static_cast<long long>(ms(t0, t_end)));
  }
  if (args.budget_ms > 0 && ms(t0, t_end) > args.budget_ms) {
    std::fprintf(stderr, "simlint: run took %lld ms, over the %ld ms budget\n",
                 static_cast<long long>(ms(t0, t_end)), args.budget_ms);
    return 1;
  }
  return new_findings == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ofc::simlint

int main(int argc, char** argv) {
  ofc::simlint::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--root" && i + 1 < argc) {
      args.root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      args.root = value_of("--root=");
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json = true;
      args.json_path = value_of("--json=");
    } else if (arg == "--github") {
      args.github = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      args.baseline_path = value_of("--baseline=");
    } else if (arg == "--write-baseline") {
      args.write_baseline = true;
    } else if (arg == "--list-metrics") {
      args.list_metrics = true;
    } else if (arg == "--stats") {
      args.stats = true;
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      args.budget_ms = std::atol(value_of("--budget-ms=").c_str());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: simlint --root <dir> [subdir...] [--json[=PATH]] "
                   "[--github] [--baseline=PATH] [--write-baseline] "
                   "[--list-metrics] [--stats] [--budget-ms=N]\n");
      return 2;
    } else {
      args.subdirs.push_back(arg);
    }
  }
  return ofc::simlint::Run(args);
}
