// simlint lexer: a real (if deliberately small) C++ tokenizer.
//
// Produces the token stream the simlint v2 rules reason over. Unlike the v1
// strip-and-regex pass, the lexer understands:
//   - line splices (backslash-newline) anywhere, including inside line
//     comments and identifiers, with original line numbers preserved;
//   - string/char literals with escapes and encoding prefixes (u8 u U L),
//     including char literals that contain a double quote;
//   - raw string literals R"delim( ... )delim" (splices are *not* processed
//     inside them, per the standard);
//   - pp-numbers with digit separators (1'000'000) and exponent signs, so an
//     apostrophe inside a number never opens a phantom char literal;
//   - maximal-munch multi-character operators (++ -- += == :: -> ...), so the
//     rules can tell `==` from `=` and `++` from `+`.
//
// Comments are not tokens: they are collected separately, one entry per
// source line they cover, because the only thing simlint reads from comments
// is the `simlint: allow(...)` suppression syntax.
#ifndef OFC_TOOLS_SIMLINT_LEXER_H_
#define OFC_TOOLS_SIMLINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ofc::simlint {

enum class TokKind {
  kIdentifier,  // Identifiers and keywords (rules match on spelling).
  kNumber,      // pp-number, digit separators included in `text`.
  kString,      // Any string literal; `text` is the contents without quotes.
  kChar,        // Character literal; `text` is the contents without quotes.
  kPunct,       // Operator / punctuator, maximal munch.
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character.
};

struct Comment {
  int line = 0;        // 1-based.
  std::string text;    // Comment text on this line (delimiters stripped).
};

struct LexResult {
  std::vector<Token> tokens;
  // One entry per (line, text) of comment content, in file order. A block
  // comment spanning three lines contributes three entries.
  std::vector<Comment> comments;
};

LexResult Lex(std::string_view src);

}  // namespace ofc::simlint

#endif  // OFC_TOOLS_SIMLINT_LEXER_H_
