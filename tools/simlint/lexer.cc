#include "tools/simlint/lexer.h"

#include <cctype>

namespace ofc::simlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// A cursor over the raw bytes that transparently skips line splices
// (backslash-newline, optionally with a \r) everywhere except raw strings,
// which the caller scans through the underlying buffer directly.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) { SkipSplices(); }

  bool Eof() const { return pos_ >= src_.size(); }
  int line() const { return line_; }
  std::size_t pos() const { return pos_; }

  char Peek(std::size_t ahead = 0) const {
    std::size_t p = pos_;
    int dummy_line = line_;
    for (std::size_t k = 0; k < ahead; ++k) {
      if (p >= src_.size()) {
        return '\0';
      }
      Advance(&p, &dummy_line);
      SkipSplicesAt(&p, &dummy_line);
    }
    return p < src_.size() ? src_[p] : '\0';
  }

  char Get() {
    if (Eof()) {
      return '\0';
    }
    const char c = src_[pos_];
    Advance(&pos_, &line_);
    SkipSplices();
    return c;
  }

  // Raw access for raw-string bodies, where splices must not be folded.
  char RawGet() {
    if (Eof()) {
      return '\0';
    }
    const char c = src_[pos_];
    if (c == '\n') {
      ++line_;
    }
    ++pos_;
    return c;
  }

  bool RawStartsWith(std::string_view s) const {
    return src_.compare(pos_, s.size(), s) == 0;
  }

 private:
  void Advance(std::size_t* p, int* line) const {
    if (src_[*p] == '\n') {
      ++*line;
    }
    ++*p;
  }

  void SkipSplicesAt(std::size_t* p, int* line) const {
    while (*p < src_.size() && src_[*p] == '\\') {
      std::size_t q = *p + 1;
      if (q < src_.size() && src_[q] == '\r') {
        ++q;
      }
      if (q < src_.size() && src_[q] == '\n') {
        *p = q + 1;
        ++*line;
      } else {
        break;
      }
    }
  }

  void SkipSplices() { SkipSplicesAt(&pos_, &line_); }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// Encoding prefixes that may precede a string or char literal.
bool IsLiteralPrefix(const std::string& id, bool* raw) {
  if (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR") {
    *raw = true;
    return true;
  }
  *raw = false;
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

// Multi-character punctuators, longest first within each leading char.
// `>>` is intentionally split into two `>` tokens: the rules balance template
// argument lists far more often than they meet a right shift, and two closes
// are correct for the former while merely odd for the latter.
const char* const kPuncts3[] = {"<<=", ">>=", "->*", "..."};
const char* const kPuncts2[] = {"::", "->", "++", "--", "<<", "<=", ">=", "==", "!=",
                                "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                                "^=", ".*", "##"};

}  // namespace

LexResult Lex(std::string_view src) {
  LexResult out;
  Cursor cur(src);

  auto add_comment_char = [&out](int line, char c) {
    if (out.comments.empty() || out.comments.back().line != line) {
      out.comments.push_back({line, ""});
    }
    out.comments.back().text += c;
  };

  while (!cur.Eof()) {
    const char c = cur.Peek();
    const int line = cur.line();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.Get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.Peek(1) == '/') {
      cur.Get();
      cur.Get();
      // A splice continues a line comment onto the next physical line; the
      // cursor folds it away, so the terminating '\n' here is a real one.
      while (!cur.Eof() && cur.Peek() != '\n') {
        add_comment_char(line, cur.Get());
      }
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      cur.Get();
      cur.Get();
      while (!cur.Eof() && !(cur.Peek() == '*' && cur.Peek(1) == '/')) {
        const int comment_line = cur.line();
        const char cc = cur.Get();
        if (cc != '\n') {
          add_comment_char(comment_line, cc);
        }
      }
      if (!cur.Eof()) {
        cur.Get();
        cur.Get();
      }
      continue;
    }

    // Identifier, possibly a literal prefix.
    if (IsIdentStart(c)) {
      std::string id;
      while (!cur.Eof() && IsIdentChar(cur.Peek())) {
        id += cur.Get();
      }
      bool raw = false;
      if (!cur.Eof() && IsLiteralPrefix(id, &raw)) {
        if (raw && cur.Peek() == '"') {
          // Raw string: R"delim( ... )delim" — scan the underlying bytes.
          cur.Get();  // Consume the opening quote.
          std::string delim;
          while (!cur.Eof() && cur.Peek() != '(' && cur.Peek() != '"' &&
                 cur.Peek() != '\n') {
            delim += cur.RawGet();
          }
          if (cur.Eof() || cur.Peek() != '(') {
            out.tokens.push_back({TokKind::kString, delim, line});
            continue;
          }
          cur.RawGet();  // '('
          const std::string closer = ")" + delim + "\"";
          std::string body;
          while (!cur.Eof() && !cur.RawStartsWith(closer)) {
            body += cur.RawGet();
          }
          for (std::size_t k = 0; k < closer.size() && !cur.Eof(); ++k) {
            cur.RawGet();
          }
          out.tokens.push_back({TokKind::kString, body, line});
          continue;
        }
        if (!raw && (cur.Peek() == '"' || cur.Peek() == '\'')) {
          // Fall through to the literal scanner below with the prefix folded
          // into it: emit the literal, not the prefix identifier.
          const char quote = cur.Get();
          std::string body;
          while (!cur.Eof() && cur.Peek() != quote && cur.Peek() != '\n') {
            char cc = cur.Get();
            if (cc == '\\' && !cur.Eof()) {
              body += cc;
              cc = cur.Get();
            }
            body += cc;
          }
          if (!cur.Eof() && cur.Peek() == quote) {
            cur.Get();
          }
          out.tokens.push_back(
              {quote == '"' ? TokKind::kString : TokKind::kChar, body, line});
          continue;
        }
      }
      out.tokens.push_back({TokKind::kIdentifier, id, line});
      continue;
    }

    // pp-number: digits, digit separators, exponents, suffixes.
    if (IsDigit(c) || (c == '.' && IsDigit(cur.Peek(1)))) {
      std::string num;
      num += cur.Get();
      while (!cur.Eof()) {
        const char n = cur.Peek();
        if (IsIdentChar(n) || n == '.') {
          num += cur.Get();
          // Exponent signs: e+ e- p+ p- continue the pp-number.
          if ((n == 'e' || n == 'E' || n == 'p' || n == 'P') &&
              (cur.Peek() == '+' || cur.Peek() == '-')) {
            num += cur.Get();
          }
          continue;
        }
        // A digit separator only continues the number when followed by an
        // alphanumeric; otherwise it opens a char literal (e.g. `1'x'`... not
        // valid C++, but the lexer must not swallow real code after it).
        if (n == '\'' && IsIdentChar(cur.Peek(1))) {
          num += cur.Get();
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::kNumber, num, line});
      continue;
    }

    // Plain string / char literal.
    if (c == '"' || c == '\'') {
      const char quote = cur.Get();
      std::string body;
      while (!cur.Eof() && cur.Peek() != quote && cur.Peek() != '\n') {
        char cc = cur.Get();
        if (cc == '\\' && !cur.Eof()) {
          body += cc;
          cc = cur.Get();
        }
        body += cc;
      }
      if (!cur.Eof() && cur.Peek() == quote) {
        cur.Get();
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, body, line});
      continue;
    }

    // Punctuators, maximal munch.
    {
      bool matched = false;
      const char three[4] = {cur.Peek(0), cur.Peek(1), cur.Peek(2), '\0'};
      for (const char* p : kPuncts3) {
        if (three[0] == p[0] && three[1] == p[1] && three[2] == p[2]) {
          cur.Get();
          cur.Get();
          cur.Get();
          out.tokens.push_back({TokKind::kPunct, p, line});
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
      const char two[3] = {cur.Peek(0), cur.Peek(1), '\0'};
      for (const char* p : kPuncts2) {
        if (two[0] == p[0] && two[1] == p[1]) {
          cur.Get();
          cur.Get();
          out.tokens.push_back({TokKind::kPunct, p, line});
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
      out.tokens.push_back({TokKind::kPunct, std::string(1, cur.Get()), line});
    }
  }
  return out;
}

}  // namespace ofc::simlint
