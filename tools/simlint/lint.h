// simlint: repo-specific determinism lint for the OFC simulator.
//
// A token/regex-level pass (no libclang dependency) that enforces the
// invariants the discrete-event simulator's reproducibility rests on. The
// rules, their ids, and the suppression syntax are documented in DESIGN.md
// ("Determinism & static analysis"); in short:
//
//   wall-clock       std::chrono::{system,steady,high_resolution}_clock —
//                    simulated time is the only clock.
//   ambient-rng      rand()/srand()/std::random_device/mt19937/time(nullptr)
//                    outside src/common/rng.* — all randomness flows from the
//                    seeded Rng.
//   unordered-iter   iteration (range-for or .begin()/.end()) over a
//                    std::unordered_* container declared in the same file —
//                    bucket order is not deterministic across implementations.
//   float-sim-time   float/double variables whose names mark them as holding
//                    simulated time (sim_time/when/deadline) — SimTime is
//                    integral by design; floating accumulation drifts.
//   naked-new        naked new/delete expressions — ownership goes through
//                    containers and smart pointers.
//   unguarded-trace  trace/flight-recorder emit calls (Span/Instant/
//                    CounterSample/Record on a trace/flight receiver) in src/
//                    without an enabled()/Sampled()/Traced()/FlightOn() guard
//                    nearby — disabled observability must cost one untaken
//                    branch, not string formatting. The obs layer itself is
//                    exempt (it implements the recorders).
//   suppression      a `simlint: allow(...)` comment without a justification.
//
// Suppressions: `// simlint: allow(rule-a,rule-b) -- why this is sound` on the
// offending line, or alone on the line directly above it. The justification
// after `--` is mandatory.
#ifndef OFC_TOOLS_SIMLINT_LINT_H_
#define OFC_TOOLS_SIMLINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ofc::simlint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

struct LintOptions {
  // Files allowed to use ambient randomness primitives (the Rng implementation
  // itself). Matched as a path suffix.
  std::vector<std::string> rng_exempt_suffixes = {"src/common/rng.h", "src/common/rng.cc"};
};

// Lints one translation unit. `file_label` is used verbatim in findings and
// for the rng exemption match.
std::vector<Finding> LintSource(const std::string& file_label, std::string_view content,
                                const LintOptions& options = {});

// Renders `file:line: [rule] message`.
std::string FormatFinding(const Finding& finding);

}  // namespace ofc::simlint

#endif  // OFC_TOOLS_SIMLINT_LINT_H_
