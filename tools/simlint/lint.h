// simlint v2: project-aware static analysis for the OFC simulator.
//
// The per-file layer in this header runs on a real token stream (see
// lexer.h) with a lightweight scope/symbol tracker, replacing the v1
// strip-and-regex pass. File-local rules:
//
//   wall-clock          std::chrono::{system,steady,high_resolution}_clock —
//                       simulated time is the only clock.
//   ambient-rng         rand()/srand()/std::random_device/mt19937/
//                       time(nullptr) outside src/common/rng.* — all
//                       randomness flows from the seeded Rng.
//   float-sim-time      float/double variables named like simulated time
//                       (sim_time/when/deadline) — SimTime is integral.
//   naked-new           naked new/delete — ownership goes through containers
//                       and smart pointers.
//   unguarded-trace     trace/flight emits in src/ without a nearby
//                       enabled()-style guard (src/obs/ exempt).
//   unordered-iter      flow-aware: iterating a std::unordered_* container
//                       only fires when the loop body (or enclosing
//                       statement, for begin()/end()) reaches event-visible
//                       state — scheduling, metrics, RNG, trace/flight.
//                       Copying into a vector that is later sorted is clean.
//   dangling-capture    a lambda with a by-reference capture ([&] / [&x] /
//                       [&x = y]) passed to EventLoop::ScheduleAt/
//                       ScheduleAfter or a PeriodicTask callback in src/ —
//                       the callback outlives the enclosing frame, so every
//                       capture must be by value (including `this`, whose
//                       lifetime the owner must guarantee, cf. PeriodicTask's
//                       destructor-cancelled event).
//   dcheck-side-effect  ++/--/assignment/known-mutating calls (.erase/.pop_*/
//                       .insert/.clear/...) inside SIM_DCHECK/SIM_ASSERT
//                       whose target is declared *outside* the macro argument
//                       — the expression compiles out in Release, taking the
//                       side effect with it. Mutations of locals declared
//                       inside the argument (e.g. an IIFE's accumulators) are
//                       invisible outside and allowed.
//   metric-name-audit   (file-local half) metric family names passed to
//                       GetCounter/GetGauge/GetSeries in src/ must be string
//                       literals matching `ofc.<component>.<name>` with
//                       lower_snake segments. The cross-file half (kind
//                       conflicts, DESIGN.md table) lives in project.h.
//   suppression         a `simlint: allow(...)` comment without a
//                       justification.
//
// Suppressions: `// simlint: allow(rule-a,rule-b) -- why this is sound` on
// the offending line, or alone on the line directly above it. The
// justification after `--` is mandatory. Project-level findings (layer-cycle,
// metric kind conflicts, cross-file unordered-iter) honor the same syntax at
// the line they anchor to.
#ifndef OFC_TOOLS_SIMLINT_LINT_H_
#define OFC_TOOLS_SIMLINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ofc::simlint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
  // Stable id (rule + file + normalized anchor text + ordinal); assigned by
  // the project layer, empty for bare LintSource() results.
  std::string id;
  // True when a baseline entry with a justification covers this finding; a
  // baselined finding is reported but does not fail the run.
  bool baselined = false;
};

struct LintOptions {
  // Files allowed to use ambient randomness primitives (the Rng implementation
  // itself). Matched as a path suffix.
  std::vector<std::string> rng_exempt_suffixes = {"src/common/rng.h", "src/common/rng.cc"};
};

// A quoted #include directive ("src/..." style paths).
struct IncludeDecl {
  std::string path;
  int line = 0;
};

// A metric family registration with a literal name.
struct MetricReg {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "series"
  int line = 0;
};

// An iteration over a name that *might* be an unordered container declared in
// an included header, whose loop body reaches an event-visible sink. The
// project pass matches these against unordered members exported by directly
// included files.
struct IterationSite {
  std::string target;
  int line = 0;
};

// Inline-suppression state for one file, exported so project-level rules can
// honor the same `simlint: allow(...)` syntax.
struct SuppressionMap {
  struct Entry {
    std::set<std::string> rules;  // "*" = all rules.
    bool justified = false;
  };
  std::map<int, Entry> by_line;
  std::set<int> lines_with_tokens;  // For the "alone on the line above" test.

  bool IsSuppressed(int line, const std::string& rule) const;
};

struct FileAnalysis {
  std::vector<Finding> findings;
  std::vector<IncludeDecl> includes;
  std::vector<MetricReg> metrics;
  // Unordered-container member/namespace-scope names declared in this file
  // (exported for the cross-file unordered-iter pass).
  std::vector<std::string> unordered_members;
  std::vector<IterationSite> iteration_sites;
  SuppressionMap suppressions;
};

// Full per-file analysis. `file_label` is the root-relative path, used
// verbatim in findings and for path-scoped rules (src/, src/obs/, rng
// exemptions).
FileAnalysis AnalyzeSource(const std::string& file_label, std::string_view content,
                           const LintOptions& options = {});

// v1-compatible entry point: findings only.
std::vector<Finding> LintSource(const std::string& file_label, std::string_view content,
                                const LintOptions& options = {});

// Renders `file:line: [rule] message`.
std::string FormatFinding(const Finding& finding);

}  // namespace ofc::simlint

#endif  // OFC_TOOLS_SIMLINT_LINT_H_
