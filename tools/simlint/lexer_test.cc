#include "tools/simlint/lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ofc::simlint {
namespace {

std::vector<std::string> Texts(const LexResult& lexed) {
  std::vector<std::string> out;
  out.reserve(lexed.tokens.size());
  for (const Token& t : lexed.tokens) {
    out.push_back(t.text);
  }
  return out;
}

const Token* FindToken(const LexResult& lexed, const std::string& text) {
  for (const Token& t : lexed.tokens) {
    if (t.text == text) {
      return &t;
    }
  }
  return nullptr;
}

TEST(LexerTest, TokenizesIdentifiersNumbersAndPunctuation) {
  const auto lexed = Lex("int x = a->b + 3;");
  EXPECT_EQ(Texts(lexed),
            (std::vector<std::string>{"int", "x", "=", "a", "->", "b", "+", "3", ";"}));
  EXPECT_EQ(lexed.tokens[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(lexed.tokens[2].kind, TokKind::kPunct);
  EXPECT_EQ(lexed.tokens[7].kind, TokKind::kNumber);
}

TEST(LexerTest, StringContentsProduceNoTokens) {
  const auto lexed = Lex("const char* s = \"rand() new delete\";");
  EXPECT_EQ(FindToken(lexed, "rand"), nullptr);
  const Token* str = FindToken(lexed, "rand() new delete");
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->kind, TokKind::kString);
}

TEST(LexerTest, CharLiteralContainingDoubleQuoteDoesNotOpenAString) {
  // A naive scanner treats the '"' char literal as a string opener and
  // swallows the rest of the file.
  const auto lexed = Lex("char q = '\"'; int rand_seed = rand();");
  ASSERT_NE(FindToken(lexed, "rand"), nullptr);
  EXPECT_EQ(FindToken(lexed, "rand")->kind, TokKind::kIdentifier);
  const Token* ch = FindToken(lexed, "\"");
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->kind, TokKind::kChar);
}

TEST(LexerTest, EscapedQuotesStayInsideLiterals) {
  const auto lexed = Lex(R"x(auto s = "a\"b"; auto c = '\''; int after = 1;)x");
  ASSERT_NE(FindToken(lexed, "after"), nullptr);
  ASSERT_NE(FindToken(lexed, "a\\\"b"), nullptr);
  EXPECT_EQ(FindToken(lexed, "a\\\"b")->kind, TokKind::kString);
}

TEST(LexerTest, RawStringsWithCustomDelimiters) {
  // The inner )" must not close the raw string; only )lint" does.
  const std::string src =
      "auto s = R\"lint(body with )\" and \"quotes\" and newline\n"
      "still body)lint\"; int after = 2;";
  const auto lexed = Lex(src);
  const Token* after = FindToken(lexed, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 2);
  EXPECT_EQ(FindToken(lexed, "quotes"), nullptr);
}

TEST(LexerTest, EncodingPrefixedLiteralsAreLiterals) {
  const auto lexed = Lex("auto a = u8\"x\"; auto b = L\"y\"; auto c = u'z';");
  ASSERT_NE(FindToken(lexed, "x"), nullptr);
  EXPECT_EQ(FindToken(lexed, "x")->kind, TokKind::kString);
  ASSERT_NE(FindToken(lexed, "y"), nullptr);
  EXPECT_EQ(FindToken(lexed, "y")->kind, TokKind::kString);
  ASSERT_NE(FindToken(lexed, "z"), nullptr);
  EXPECT_EQ(FindToken(lexed, "z")->kind, TokKind::kChar);
  // The prefixes themselves do not surface as identifiers.
  EXPECT_EQ(FindToken(lexed, "u8"), nullptr);
  EXPECT_EQ(FindToken(lexed, "L"), nullptr);
}

TEST(LexerTest, LineCommentsAndBlockCommentsAreCollectedNotTokenized) {
  const std::string src =
      "int a = 1;  // trailing comment\n"
      "/* block\n"
      "   spanning */\n"
      "int b = 2;\n";
  const auto lexed = Lex(src);
  EXPECT_EQ(FindToken(lexed, "trailing"), nullptr);
  EXPECT_EQ(FindToken(lexed, "spanning"), nullptr);
  ASSERT_EQ(lexed.comments.size(), 3u);  // One entry per commented line.
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 2);
  EXPECT_EQ(lexed.comments[2].line, 3);
  EXPECT_NE(lexed.comments[0].text.find("trailing"), std::string::npos);
  const Token* b = FindToken(lexed, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->line, 4);
}

TEST(LexerTest, LineSplicedCommentContinuesOntoNextLine) {
  // The backslash-newline splices the comment across the physical line break,
  // so `rand()` on line 2 is still commented out.
  const std::string src =
      "// a comment that continues \\\n"
      "rand();\n"
      "int live = 1;\n";
  const auto lexed = Lex(src);
  EXPECT_EQ(FindToken(lexed, "rand"), nullptr);
  ASSERT_NE(FindToken(lexed, "live"), nullptr);
  EXPECT_EQ(FindToken(lexed, "live")->line, 3);
}

TEST(LexerTest, LineSplicedTokenSpansPhysicalLines) {
  const std::string src = "int spli\\\nced = 4;\n";
  const auto lexed = Lex(src);
  ASSERT_NE(FindToken(lexed, "spliced"), nullptr);
  EXPECT_EQ(FindToken(lexed, "spliced")->line, 1);
}

TEST(LexerTest, DigitSeparatorsStayOneNumberToken) {
  const auto lexed = Lex("long n = 1'000'000; auto m = 0x1F'FF;");
  const Token* n = FindToken(lexed, "1'000'000");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->kind, TokKind::kNumber);
  EXPECT_NE(FindToken(lexed, "0x1F'FF"), nullptr);
}

TEST(LexerTest, ApostropheAfterNumberNotFollowedByAlnumIsAChar) {
  // `(1,'a')` lexes 1 then the char 'a'; the separator rule requires an
  // alphanumeric continuation.
  const auto lexed = Lex("auto p = std::make_pair(1,'a');");
  const Token* one = FindToken(lexed, "1");
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->kind, TokKind::kNumber);
  const Token* a = FindToken(lexed, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, TokKind::kChar);
}

TEST(LexerTest, MaximalMunchOperators) {
  const auto lexed = Lex("a <<= b; c->*d; e && f; g::h; i...");
  EXPECT_NE(FindToken(lexed, "<<="), nullptr);
  EXPECT_NE(FindToken(lexed, "->*"), nullptr);
  EXPECT_NE(FindToken(lexed, "&&"), nullptr);
  EXPECT_NE(FindToken(lexed, "::"), nullptr);
  EXPECT_NE(FindToken(lexed, "..."), nullptr);
}

TEST(LexerTest, RightShiftSplitsForTemplateBalancing) {
  // `>>` is deliberately two `>` tokens so nested template argument lists
  // balance with a simple depth counter.
  const auto lexed = Lex("std::vector<std::vector<int>> v;");
  EXPECT_EQ(FindToken(lexed, ">>"), nullptr);
  int closes = 0;
  for (const Token& t : lexed.tokens) {
    closes += (t.text == ">") ? 1 : 0;
  }
  EXPECT_EQ(closes, 2);
}

TEST(LexerTest, TokensCarryOneBasedLineNumbers) {
  const auto lexed = Lex("one\ntwo\n\nthree\n");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 2);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

}  // namespace
}  // namespace ofc::simlint
