#include "tools/simlint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ofc::simlint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(SIMLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> LintFixture(const std::string& name) {
  return LintSource(name, ReadFixture(name));
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

bool AllRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::all_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(SimlintTest, FlagsWallClock) {
  const auto findings = LintFixture("violation_wallclock.cc");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(AllRule(findings, "wall-clock"));
  EXPECT_TRUE(HasFinding(findings, "wall-clock", 5));
  EXPECT_TRUE(HasFinding(findings, "wall-clock", 6));
  EXPECT_TRUE(HasFinding(findings, "wall-clock", 7));
}

TEST(SimlintTest, FlagsAmbientRng) {
  const auto findings = LintFixture("violation_rng.cc");
  EXPECT_TRUE(AllRule(findings, "ambient-rng"));
  EXPECT_TRUE(HasFinding(findings, "ambient-rng", 7));   // srand + time(nullptr)
  EXPECT_TRUE(HasFinding(findings, "ambient-rng", 8));   // random_device
  EXPECT_TRUE(HasFinding(findings, "ambient-rng", 9));   // mt19937
  EXPECT_TRUE(HasFinding(findings, "ambient-rng", 10));  // rand()
}

TEST(SimlintTest, RngImplementationIsExempt) {
  // The same content under the sanctioned Rng path produces no findings.
  const auto findings = LintSource("src/common/rng.cc", ReadFixture("violation_rng.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(SimlintTest, FlagsUnorderedIterationOnlyWhenSinkReached) {
  const auto findings = LintFixture("violation_unordered_iter.cc");
  EXPECT_EQ(findings.size(), 2u) << (findings.empty() ? "" : FormatFinding(findings[0]));
  EXPECT_TRUE(AllRule(findings, "unordered-iter"));
  EXPECT_TRUE(HasFinding(findings, "unordered-iter", 20));  // range-for → ScheduleAt
  EXPECT_TRUE(HasFinding(findings, "unordered-iter", 23));  // begin() → Observe
  // The accumulate-only loop and the copy-then-sort idiom stay clean.
}

TEST(SimlintTest, FindEndMembershipCheckIsClean) {
  const std::string src =
      "#include <string>\n"
      "#include <unordered_map>\n"
      "struct S {\n"
      "  bool Has(const std::string& k) {\n"
      "    return m_.find(k) != m_.end() && metrics_ != nullptr;\n"
      "  }\n"
      "  std::unordered_map<std::string, int> m_;\n"
      "  int* metrics_ = nullptr;\n"
      "};\n";
  EXPECT_TRUE(LintSource("src/core/s.h", src).empty());
}

TEST(SimlintTest, FlagsDanglingCaptures) {
  const auto findings = LintSource("src/core/violation_dangling_capture.cc",
                                   ReadFixture("violation_dangling_capture.cc"));
  EXPECT_EQ(findings.size(), 4u) << (findings.empty() ? "" : FormatFinding(findings[0]));
  EXPECT_TRUE(AllRule(findings, "dangling-capture"));
  EXPECT_TRUE(HasFinding(findings, "dangling-capture", 17));  // [&]
  EXPECT_TRUE(HasFinding(findings, "dangling-capture", 18));  // [&local]
  EXPECT_TRUE(HasFinding(findings, "dangling-capture", 19));  // [&v = local]
  EXPECT_TRUE(HasFinding(findings, "dangling-capture", 20));  // PeriodicTask cb
  // [p = &local] (address-of, by value) and [local] stay clean.
}

TEST(SimlintTest, DanglingCaptureRuleOnlyAppliesUnderSrc) {
  // Tests drive loops synchronously within the frame; by-ref captures there
  // are routine.
  const std::string content = ReadFixture("violation_dangling_capture.cc");
  EXPECT_TRUE(LintSource("tests/sim_test.cpp", content).empty());
}

TEST(SimlintTest, FlagsDcheckSideEffects) {
  const auto findings = LintFixture("violation_dcheck_side_effect.cc");
  EXPECT_EQ(findings.size(), 3u) << (findings.empty() ? "" : FormatFinding(findings[0]));
  EXPECT_TRUE(AllRule(findings, "dcheck-side-effect"));
  EXPECT_TRUE(HasFinding(findings, "dcheck-side-effect", 10));  // .pop_front()
  EXPECT_TRUE(HasFinding(findings, "dcheck-side-effect", 11));  // counter++
  EXPECT_TRUE(HasFinding(findings, "dcheck-side-effect", 12));  // counter = 1
  // The pure read and the IIFE mutating its own locals stay clean.
}

TEST(SimlintTest, HoistedMutationOutsideDcheckIsClean) {
  const std::string src =
      "void PeriodicTask::Stop() {\n"
      "  const bool cancelled = loop_->Cancel(event_);\n"
      "  SIM_ASSERT(cancelled) << \"lost tick\";\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/sim/periodic.cc", src).empty());
}

TEST(SimlintTest, FlagsMetricNameViolations) {
  const auto findings = LintSource("src/core/violation_metric_name.cc",
                                   ReadFixture("violation_metric_name.cc"));
  EXPECT_EQ(findings.size(), 4u) << (findings.empty() ? "" : FormatFinding(findings[0]));
  EXPECT_TRUE(AllRule(findings, "metric-name-audit"));
  EXPECT_TRUE(HasFinding(findings, "metric-name-audit", 12));  // missing ofc.
  EXPECT_TRUE(HasFinding(findings, "metric-name-audit", 13));  // not lower_snake
  EXPECT_TRUE(HasFinding(findings, "metric-name-audit", 14));  // two segments
  EXPECT_TRUE(HasFinding(findings, "metric-name-audit", 15));  // non-literal
}

TEST(SimlintTest, AnalyzeSourceExportsIncludesMetricsAndMembers) {
  const std::string src =
      "#include \"src/obs/metrics.h\"\n"
      "#include <unordered_map>\n"
      "struct Agent {\n"
      "  explicit Agent(Registry* r) : hits_(r->GetCounter(\"ofc.agent.hits\")) {}\n"
      "  int* hits_;\n"
      "  std::unordered_map<int, int> table_;\n"
      "};\n";
  const FileAnalysis fa = AnalyzeSource("src/core/agent.h", src);
  ASSERT_EQ(fa.includes.size(), 1u);
  EXPECT_EQ(fa.includes[0].path, "src/obs/metrics.h");
  ASSERT_EQ(fa.metrics.size(), 1u);
  EXPECT_EQ(fa.metrics[0].name, "ofc.agent.hits");
  EXPECT_EQ(fa.metrics[0].kind, "counter");
  ASSERT_EQ(fa.unordered_members.size(), 1u);
  EXPECT_EQ(fa.unordered_members[0], "table_");
}

TEST(SimlintTest, FlagsFloatSimTime) {
  const auto findings = LintFixture("violation_float_time.cc");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(AllRule(findings, "float-sim-time"));
  EXPECT_TRUE(HasFinding(findings, "float-sim-time", 3));
  EXPECT_TRUE(HasFinding(findings, "float-sim-time", 4));
  EXPECT_TRUE(HasFinding(findings, "float-sim-time", 5));
}

TEST(SimlintTest, FlagsNakedNewAndDelete) {
  const auto findings = LintFixture("violation_naked_new.cc");
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(AllRule(findings, "naked-new"));
  EXPECT_TRUE(HasFinding(findings, "naked-new", 7));
  EXPECT_TRUE(HasFinding(findings, "naked-new", 8));
  EXPECT_TRUE(HasFinding(findings, "naked-new", 10));
  EXPECT_TRUE(HasFinding(findings, "naked-new", 11));
}

TEST(SimlintTest, FlagsUnguardedTraceEmitsInComponentCode) {
  const auto findings = LintSource("src/core/violation_unguarded_trace.cc",
                                   ReadFixture("violation_unguarded_trace.cc"));
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(AllRule(findings, "unguarded-trace"));
  EXPECT_TRUE(HasFinding(findings, "unguarded-trace", 17));  // bare trace_->Instant
  EXPECT_TRUE(HasFinding(findings, "unguarded-trace", 29));  // guard out of window
}

TEST(SimlintTest, UnguardedTraceRuleOnlyAppliesUnderSrc) {
  // Same content outside src/ (tests, tools, bench drive recorders directly)
  // and inside the obs layer (which implements them) produces no findings.
  const std::string content = ReadFixture("violation_unguarded_trace.cc");
  EXPECT_TRUE(LintSource("tests/chaos_test.cc", content).empty());
  EXPECT_TRUE(LintSource("src/obs/trace.cc", content).empty());
}

TEST(SimlintTest, GuardedEmitAndNonRecorderReceiverAreClean) {
  const std::string src =
      "void Component::Tick() {\n"
      "  if (FlightOn()) {\n"
      "    flight_->Record(now, kind, id);\n"
      "  }\n"
      "  scheduler_.Record(now);\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/core/component.cc", src).empty());
}

TEST(SimlintTest, UnjustifiedSuppressionIsAFindingAndNotHonored) {
  const auto findings = LintFixture("violation_unjustified_suppression.cc");
  // The bare allow() is flagged, and the wall-clock finding still surfaces.
  EXPECT_TRUE(HasFinding(findings, "suppression", 6));
  EXPECT_TRUE(HasFinding(findings, "wall-clock", 6));
}

TEST(SimlintTest, JustifiedSuppressionsSilenceFindings) {
  const auto findings = LintFixture("suppressed_ok.cc");
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(SimlintTest, CleanFixtureHasNoFindings) {
  const auto findings = LintFixture("clean.cc");
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings.front());
}

TEST(SimlintTest, SuppressionOnlyCoversNamedRules) {
  const std::string src =
      "#include <chrono>\n"
      "// simlint: allow(ambient-rng) -- wrong rule named\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto findings = LintSource("x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SimlintTest, WildcardSuppressionCoversAllRules) {
  const std::string src =
      "#include <chrono>\n"
      "// simlint: allow(*) -- fixture-style blanket waiver\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(LintSource("x.cc", src).empty());
}

TEST(SimlintTest, BannedTokensInCommentsAndStringsIgnored) {
  const std::string src =
      "// rand() and std::chrono::steady_clock here\n"
      "/* std::random_device */\n"
      "const char* s = \"time(nullptr) new int[3]\";\n";
  EXPECT_TRUE(LintSource("x.cc", src).empty());
}

TEST(SimlintTest, FormatFindingIsStable) {
  Finding f;
  f.file = "src/foo.cc";
  f.line = 12;
  f.rule = "wall-clock";
  f.message = "msg";
  EXPECT_EQ(FormatFinding(f), "src/foo.cc:12: [wall-clock] msg");
}

}  // namespace
}  // namespace ofc::simlint
