#include "tools/simlint/project.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ofc::simlint {
namespace {

std::vector<Finding> FindingsFor(const ProjectResult& result, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

ProjectOptions NoDesign() {
  ProjectOptions options;
  options.design_md.clear();
  return options;
}

// ---- layer-cycle -------------------------------------------------------------

TEST(ProjectTest, UpwardIncludeViolatesLayerDag) {
  const std::vector<SourceFile> files = {
      {"src/store/swift.h", "#include \"src/core/proxy.h\"\n"},
      {"src/core/proxy.h", "int x;\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  const auto findings = FindingsFor(result, "layer-cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/store/swift.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("src/store may not include src/core"),
            std::string::npos);
}

TEST(ProjectTest, DownwardIncludesConformToLayerDag) {
  const std::vector<SourceFile> files = {
      {"src/core/proxy.h",
       "#include \"src/faas/platform.h\"\n#include \"src/sim/event_loop.h\"\n"},
      {"src/faas/platform.h", "#include \"src/store/swift.h\"\n"},
      {"src/store/swift.h", "#include \"src/common/units.h\"\n"},
      {"src/sim/event_loop.h", "#include \"src/common/units.h\"\n"},
      {"src/common/units.h", "int u;\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  EXPECT_TRUE(result.findings.empty()) << result.findings.front().message;
}

TEST(ProjectTest, UnknownSubsystemIsFlagged) {
  const std::vector<SourceFile> files = {
      {"src/experimental/x.h", "#include \"src/common/units.h\"\n"},
      {"src/common/units.h", "int u;\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  const auto findings = FindingsFor(result, "layer-cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not in the architecture DAG"), std::string::npos);
}

TEST(ProjectTest, IncludeCycleIsDetectedOnce) {
  const std::vector<SourceFile> files = {
      {"src/sim/a.h", "#include \"src/sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"src/sim/c.h\"\n"},
      {"src/sim/c.h", "#include \"src/sim/a.h\"\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  const auto findings = FindingsFor(result, "layer-cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/sim/a.h -> src/sim/b.h -> src/sim/c.h"),
            std::string::npos);
}

TEST(ProjectTest, SuppressedUpwardIncludeIsHonored) {
  const std::vector<SourceFile> files = {
      {"src/store/swift.h",
       "// simlint: allow(layer-cycle) -- transitional shim, tracked in DESIGN.md\n"
       "#include \"src/core/proxy.h\"\n"},
      {"src/core/proxy.h", "int x;\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  EXPECT_TRUE(FindingsFor(result, "layer-cycle").empty());
}

// ---- metric-name-audit (cross-file) ------------------------------------------

TEST(ProjectTest, ConflictingMetricKindsAreFlagged) {
  const std::vector<SourceFile> files = {
      {"src/core/a.cc", "void A(R* r) { r->GetCounter(\"ofc.core.widgets\"); }\n"},
      {"src/core/b.cc", "void B(R* r) { r->GetGauge(\"ofc.core.widgets\"); }\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  const auto findings = FindingsFor(result, "metric-name-audit");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("conflicting kinds"), std::string::npos);
  EXPECT_EQ(findings[0].file, "src/core/a.cc");  // First registering file.
}

TEST(ProjectTest, MetricMissingFromDesignTableIsFlagged) {
  ProjectOptions options;
  options.design_md = "| `ofc.core.documented` | counter | src/core/a.cc |\n";
  const std::vector<SourceFile> files = {
      {"src/core/a.cc",
       "void A(R* r) {\n"
       "  r->GetCounter(\"ofc.core.documented\");\n"
       "  r->GetCounter(\"ofc.core.undocumented\");\n"
       "}\n"},
  };
  const auto result = AnalyzeProject(files, options);
  const auto findings = FindingsFor(result, "metric-name-audit");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("ofc.core.undocumented"), std::string::npos);
}

TEST(ProjectTest, StaleDesignRowAndKindMismatchAnchorAtDesignMd) {
  ProjectOptions options;
  options.design_md =
      "| `ofc.core.gone` | counter | src/core/a.cc |\n"
      "| `ofc.core.kept` | gauge | src/core/a.cc |\n";
  const std::vector<SourceFile> files = {
      {"src/core/a.cc", "void A(R* r) { r->GetSeries(\"ofc.core.kept\"); }\n"},
  };
  const auto result = AnalyzeProject(files, options);
  const auto findings = FindingsFor(result, "metric-name-audit");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "DESIGN.md");
  EXPECT_EQ(findings[1].file, "DESIGN.md");
  // Stale row anchored at line 1, kind mismatch at line 2.
  EXPECT_NE(findings[0].message.find("nothing in src/ registers it"), std::string::npos);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[1].message.find("as a gauge but the code registers a series"),
            std::string::npos);
  EXPECT_EQ(findings[1].line, 2);
}

TEST(ProjectTest, MetricInventoryIsSortedAndMarkdownRendered) {
  const std::vector<SourceFile> files = {
      {"src/core/z.cc", "void Z(R* r) { r->GetGauge(\"ofc.core.zeta\"); }\n"},
      {"src/core/a.cc", "void A(R* r) { r->GetCounter(\"ofc.core.alpha\"); }\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  ASSERT_EQ(result.metrics.size(), 2u);
  EXPECT_EQ(result.metrics[0].name, "ofc.core.alpha");
  EXPECT_EQ(result.metrics[1].name, "ofc.core.zeta");
  EXPECT_EQ(MetricsMarkdown(result),
            "| `ofc.core.alpha` | counter | src/core/a.cc |\n"
            "| `ofc.core.zeta` | gauge | src/core/z.cc |\n");
}

// ---- unordered-iter (cross-file) ---------------------------------------------

TEST(ProjectTest, IterationOverMemberDeclaredInIncludedHeaderIsFlagged) {
  const std::vector<SourceFile> files = {
      {"src/core/agent.h",
       "#include <unordered_map>\n"
       "struct Agent {\n"
       "  std::unordered_map<int, int> table_;\n"
       "  void Sweep();\n"
       "};\n"},
      {"src/core/agent.cc",
       "#include \"src/core/agent.h\"\n"
       "void Agent::Sweep() {\n"
       "  for (auto& [k, v] : table_) {\n"
       "    loop_->ScheduleAt(v, k);\n"
       "  }\n"
       "}\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  const auto findings = FindingsFor(result, "unordered-iter");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/agent.cc");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(ProjectTest, SinklessIterationOverIncludedMemberIsClean) {
  const std::vector<SourceFile> files = {
      {"src/core/agent.h",
       "#include <unordered_map>\n"
       "struct Agent {\n"
       "  std::unordered_map<int, int> table_;\n"
       "  int Sum();\n"
       "};\n"},
      {"src/core/agent.cc",
       "#include \"src/core/agent.h\"\n"
       "int Agent::Sum() {\n"
       "  int total = 0;\n"
       "  for (auto& [k, v] : table_) {\n"
       "    total += v;\n"
       "  }\n"
       "  return total;\n"
       "}\n"},
  };
  const auto result = AnalyzeProject(files, NoDesign());
  EXPECT_TRUE(FindingsFor(result, "unordered-iter").empty());
}

// ---- Stable ids --------------------------------------------------------------

TEST(ProjectTest, FindingIdsAreStableAcrossUnrelatedEdits) {
  const SourceFile before = {"src/core/a.cc",
                             "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  const SourceFile after = {"src/core/a.cc",
                            "// A new comment shifts every line.\n"
                            "int unrelated;\n"
                            "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  const auto r1 = AnalyzeProject({before}, NoDesign());
  const auto r2 = AnalyzeProject({after}, NoDesign());
  ASSERT_EQ(r1.findings.size(), 1u);
  ASSERT_EQ(r2.findings.size(), 1u);
  EXPECT_EQ(r1.findings[0].rule, "metric-name-audit");
  EXPECT_EQ(r1.findings[0].id, r2.findings[0].id);  // Line shift: id survives.
  EXPECT_NE(r1.findings[0].line, r2.findings[0].line);
}

TEST(ProjectTest, EditingTheFlaggedLineChangesTheId) {
  const SourceFile before = {"src/core/a.cc",
                             "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  const SourceFile after = {"src/core/a.cc",
                            "void A(R* r) { r->GetCounter(\"bad renamed\"); }\n"};
  const auto r1 = AnalyzeProject({before}, NoDesign());
  const auto r2 = AnalyzeProject({after}, NoDesign());
  ASSERT_EQ(r1.findings.size(), 1u);
  ASSERT_EQ(r2.findings.size(), 1u);
  EXPECT_NE(r1.findings[0].id, r2.findings[0].id);
}

TEST(ProjectTest, IdenticalAnchorLinesGetDistinctOrdinalIds) {
  const SourceFile file = {"src/core/a.cc",
                           "void A(R* r) { r->GetCounter(\"bad name\"); }\n"
                           "void B(R* r) { r->GetCounter(\"bad name\"); }\n"};
  const auto result = AnalyzeProject({file}, NoDesign());
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_NE(result.findings[0].id, result.findings[1].id);
}

// ---- Baseline ----------------------------------------------------------------

TEST(ProjectTest, BaselineRoundTripAddSuppressResurface) {
  const SourceFile file = {"src/core/a.cc",
                           "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  // 1. The finding surfaces.
  auto result = AnalyzeProject({file}, NoDesign());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_FALSE(result.findings[0].baselined);

  // 2. Accept it into a baseline, add a justification, round-trip through the
  //    serialized form, and the finding reports as baselined.
  Baseline accepted = BaselineFromFindings(result);
  accepted.entries[0].justification = "legacy name, rename tracked separately";
  Baseline parsed;
  std::string error;
  ASSERT_TRUE(ParseBaseline(SerializeBaseline(accepted), &parsed, &error)) << error;
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].justification, accepted.entries[0].justification);

  result = AnalyzeProject({file}, NoDesign());
  ApplyBaseline(parsed, "tools/simlint/baseline.json", &result);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].baselined);

  // 3. Editing the flagged line changes the id: the finding resurfaces as new
  //    and the old entry reports stale.
  const SourceFile edited = {"src/core/a.cc",
                             "void A(R* r) { r->GetCounter(\"bad renamed\"); }\n"};
  auto result2 = AnalyzeProject({edited}, NoDesign());
  ApplyBaseline(parsed, "tools/simlint/baseline.json", &result2);
  ASSERT_EQ(result2.findings.size(), 2u);
  const auto fresh = FindingsFor(result2, "metric-name-audit");
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_FALSE(fresh[0].baselined);
  const auto stale = FindingsFor(result2, "baseline-stale");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "tools/simlint/baseline.json");
}

TEST(ProjectTest, UnjustifiedBaselineEntryIsAFindingAndNotHonored) {
  const SourceFile file = {"src/core/a.cc",
                           "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  auto result = AnalyzeProject({file}, NoDesign());
  const Baseline empty_just = BaselineFromFindings(result);
  ApplyBaseline(empty_just, "tools/simlint/baseline.json", &result);
  // The original finding is NOT baselined, and the entry itself is flagged.
  const auto original = FindingsFor(result, "metric-name-audit");
  ASSERT_EQ(original.size(), 1u);
  EXPECT_FALSE(original[0].baselined);
  EXPECT_EQ(FindingsFor(result, "baseline-unjustified").size(), 1u);
}

TEST(ProjectTest, MalformedBaselineIsRejectedWithError) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(ParseBaseline("{\"entries\": [{]", &baseline, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(ParseBaseline("{\n  \"entries\": []\n}\n", &baseline, &error)) << error;
  EXPECT_TRUE(baseline.entries.empty());
}

// ---- Output ------------------------------------------------------------------

TEST(ProjectTest, FindingsJsonIsByteDeterministicAcrossInputOrder) {
  const std::vector<SourceFile> forward = {
      {"src/core/a.cc", "void A(R* r) { r->GetCounter(\"bad a\"); }\n"},
      {"src/core/b.cc", "void B(R* r) { r->GetCounter(\"bad b\"); }\n"},
  };
  std::vector<SourceFile> reversed = forward;
  std::reverse(reversed.begin(), reversed.end());
  const std::string j1 = FindingsJson(AnalyzeProject(forward, NoDesign()));
  const std::string j2 = FindingsJson(AnalyzeProject(reversed, NoDesign()));
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"schema\": \"simlint-v2\""), std::string::npos);
  EXPECT_NE(j1.find("\"counts\": {\"total\": 2, \"new\": 2, \"baselined\": 0}"),
            std::string::npos);
}

TEST(ProjectTest, GithubAnnotationsSkipBaselinedFindings) {
  const SourceFile file = {"src/core/a.cc",
                           "void A(R* r) { r->GetCounter(\"bad name\"); }\n"};
  auto result = AnalyzeProject({file}, NoDesign());
  Baseline accepted = BaselineFromFindings(result);
  accepted.entries[0].justification = "accepted";
  ApplyBaseline(accepted, "baseline.json", &result);
  EXPECT_EQ(GithubAnnotations(result), "");

  auto fresh = AnalyzeProject({file}, NoDesign());
  const std::string annotations = GithubAnnotations(fresh);
  EXPECT_NE(annotations.find("::error file=src/core/a.cc,line=1::[simlint:"),
            std::string::npos);
}

}  // namespace
}  // namespace ofc::simlint
