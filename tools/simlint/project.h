// simlint v2 project pass: whole-tree analyses that no single translation
// unit can see, plus the machine-readable output and baseline machinery.
//
// Project rules:
//
//   layer-cycle        The architecture DAG over src/ subsystems:
//                        common → {sim, obs, ml} → workloads → {ramcloud,
//                        store} → faas → core → {fault, faasload}
//                      (each subsystem may include only the subsystems listed
//                      for it in kLayerDag). Upward includes, includes of
//                      unknown subsystems, and file-level include cycles are
//                      errors.
//   metric-name-audit  (cross-file half) every `ofc.*` metric family name
//                      registered via GetCounter/GetGauge/GetSeries in src/:
//                      a name registered with conflicting kinds is an error;
//                      a name missing from the DESIGN.md metrics table is an
//                      error; a table row whose name is no longer registered
//                      (or whose kind disagrees) is an error anchored at
//                      DESIGN.md.
//   unordered-iter     (cross-file half) an iteration whose loop body reaches
//                      event-visible state, over a name declared as a
//                      std::unordered_* member in this file or a directly
//                      included header.
//
// Stable finding ids: `<rule>-<fnv64 hex>` hashed over (rule, file,
// whitespace-normalized text of the flagged line, ordinal among identical
// tuples). Ids survive unrelated edits and line shifts; editing the flagged
// line itself changes the id, resurfacing a baselined finding.
//
// Baseline: a checked-in JSON file mapping finding ids to justifications. A
// finding covered by a justified entry is reported as `baselined` and does
// not fail the run; an entry without a justification, or one matching no
// current finding, is itself an error (`baseline-unjustified` /
// `baseline-stale`), so the baseline can only shrink or be re-justified.
#ifndef OFC_TOOLS_SIMLINT_PROJECT_H_
#define OFC_TOOLS_SIMLINT_PROJECT_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/simlint/lint.h"

namespace ofc::simlint {

struct SourceFile {
  std::string path;     // Root-relative, '/'-separated (used in findings).
  std::string content;
};

struct ProjectOptions {
  LintOptions lint;
  // Contents of DESIGN.md; empty disables the metrics-table half of
  // metric-name-audit (grammar and kind-conflict checks still run).
  std::string design_md;
  std::string design_md_label = "DESIGN.md";
  // Cross-file passes only make sense when src/ was scanned.
  bool project_rules = true;
};

struct MetricInventoryRow {
  std::string name;
  std::string kind;
  std::string first_file;  // Lexicographically first registering file.
};

struct ProjectResult {
  std::vector<Finding> findings;  // Sorted by (file, line, rule, id); ids set.
  std::size_t files_scanned = 0;
  std::vector<MetricInventoryRow> metrics;  // Sorted by name.
};

ProjectResult AnalyzeProject(const std::vector<SourceFile>& files,
                             const ProjectOptions& options);

// ---- Baseline ----------------------------------------------------------------

struct BaselineEntry {
  std::string id;
  std::string rule;
  std::string file;
  int line = 0;  // Informational; ids, not lines, key the match.
  std::string justification;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

// Parses the baseline JSON; returns false and sets *error on malformed input.
bool ParseBaseline(std::string_view json, Baseline* baseline, std::string* error);

// Serializes deterministically (entries sorted by id).
std::string SerializeBaseline(const Baseline& baseline);

// Builds a baseline covering every finding in `result` (justifications empty —
// the author must fill them in, or the next run fails `baseline-unjustified`).
Baseline BaselineFromFindings(const ProjectResult& result);

// Marks findings covered by justified entries as baselined and appends
// `baseline-unjustified` / `baseline-stale` findings anchored at
// `baseline_label`. Re-sorts.
void ApplyBaseline(const Baseline& baseline, const std::string& baseline_label,
                   ProjectResult* result);

// ---- Output ------------------------------------------------------------------

// Machine-readable report; byte-deterministic for a given result.
std::string FindingsJson(const ProjectResult& result);

// `::error file=...,line=...::...` GitHub annotations for non-baselined
// findings.
std::string GithubAnnotations(const ProjectResult& result);

// Markdown rows for the DESIGN.md metric inventory table.
std::string MetricsMarkdown(const ProjectResult& result);

// Stable 64-bit FNV-1a, exposed for tests.
std::uint64_t Fnv64(std::string_view data);

}  // namespace ofc::simlint

#endif  // OFC_TOOLS_SIMLINT_PROJECT_H_
