// Fixture: suppression rule — allow() without a justification is itself a
// finding, and the suppression is not honored.
#include <chrono>

long Now() {
  auto t = std::chrono::steady_clock::now();  // simlint: allow(wall-clock)
  return t.time_since_epoch().count();
}
