// Fixture: unguarded-trace rule. Linted under a src/-prefixed label; emit
// calls on trace/flight receivers must have an enabled()-style guard within
// the preceding lines.
#include <string>

struct Recorder {
  bool on = false;
  std::string last;
  bool IsOn() const { return on; }
  void Instant(const std::string& name) { last = name; }
  void Span(const std::string& name) { last = name; }
  void Record(const std::string& name) { last = name; }
};

struct Component {
  void Unguarded() {
    trace_->Instant("bad");  // line 17: unguarded-trace
    log_.Record("fine");     // non-recorder receiver: no finding
    int x = 0;
    x += 1;
    x += 2;
    x += 3;
    x += 4;
    x += 5;
    x += 6;
    x += 7;
    x += 8;
    (void)x;
    flight_->Record("bad");  // line 29: unguarded-trace
  }

  void Guarded() {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("ok");  // guarded: enabled() two lines up
    }
    if (FlightOn()) {
      flight_->Record("ok");  // guarded: FlightOn() one line up
    }
  }

  bool FlightOn() const { return flight_ != nullptr && flight_->on; }
  bool enabled() const { return true; }

  Recorder* trace_ = nullptr;
  Recorder* flight_ = nullptr;
  Recorder log_;
};
