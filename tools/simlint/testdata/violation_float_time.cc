// Fixture: float-sim-time rule.
double Advance(double step) {
  double sim_time = 0.0;   // line 3: float-sim-time
  float when = 1.5f;       // line 4: float-sim-time
  double deadline_us = 9;  // line 5: float-sim-time
  sim_time += step;
  return sim_time + when + deadline_us;
}
