// Fixture: idiomatic simulator code — no findings expected. Exercises the
// tricky non-violations: banned tokens inside comments and strings, ordered
// containers, lookup-only unordered containers, integral sim time.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

// std::chrono::steady_clock and rand() in a comment are fine.
namespace {

const char* kDoc = "uses std::random_device and time(nullptr) in a string";

struct Event {
  std::int64_t when_us = 0;  // integral simulated time
};

int Sum(const std::map<std::string, int>& ordered,
        const std::unordered_map<std::string, int>& lookup, const std::string& key) {
  int total = 0;
  for (const auto& [name, value] : ordered) {  // ordered iteration is fine
    total += value + static_cast<int>(name.size());
  }
  auto it = lookup.find(key);  // point lookup into unordered is fine
  if (it != lookup.end()) {
    total += it->second;
  }
  return total;
}

std::unique_ptr<Event> Make() { return std::make_unique<Event>(); }

std::vector<Event> Renew(std::vector<Event> events) {
  // Identifiers containing 'new'/'delete'/'time' must not trip word-boundary
  // rules.
  int renew_count = 0;
  int deleted = 0;
  long runtime_us = 0;
  for (Event& event : events) {
    event.when_us += 1;
    runtime_us += event.when_us;
    ++renew_count;
    ++deleted;
  }
  (void)kDoc;
  (void)renew_count;
  (void)deleted;
  (void)runtime_us;
  (void)Make();
  return events;
}

}  // namespace
