// Fixture: naked-new rule.
struct Node {
  int value = 0;
};

int Use() {
  Node* node = new Node();  // line 7: naked-new
  int* arr = new int[4];    // line 8: naked-new
  int value = node->value + arr[0];
  delete node;              // line 10: naked-new
  delete[] arr;             // line 11: naked-new
  return value;
}
