// Fixture: metric-name-audit (file-local half) — metric family names must be
// string literals matching `ofc.<component>.<name>` with lower_snake
// segments. Lint under a src/ label; the rule is scoped to component code.
struct Registry {
  int* GetCounter(const char* name, const char* label = nullptr);
  int* GetGauge(const char* name);
  int* GetSeries(const char* name);
};

void Register(Registry& reg, const char* dynamic) {
  reg.GetCounter("ofc.proxy.cache_hits");  // clean
  reg.GetCounter("proxy.cache_hits");      // line 12: missing ofc. prefix
  reg.GetGauge("ofc.Proxy.cacheHits");     // line 13: not lower_snake
  reg.GetSeries("ofc.proxy");              // line 14: two segments, not three
  reg.GetCounter(dynamic);                 // line 15: non-literal name
}
