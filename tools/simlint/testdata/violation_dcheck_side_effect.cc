// Fixture: dcheck-side-effect — SIM_DCHECK/SIM_ASSERT arguments parse but
// never evaluate when disabled, so mutations of outside state vanish in
// Release builds. Mutations of locals declared inside the argument are
// invisible outside and must stay clean.
#include <deque>

extern int counter;

void Check(std::deque<int>& q) {
  SIM_DCHECK(!q.empty() && (q.pop_front(), true));  // line 10: mutating call
  SIM_ASSERT(counter++ > 0);                        // line 11: increment
  SIM_DCHECK((counter = 1) == 1);                   // line 12: assignment
  SIM_DCHECK(q.size() == 1);                        // clean: pure read
  SIM_ASSERT([&] {
    int live = 0;
    for (int v : q) {
      live += v;  // clean: `live` is declared inside the argument
    }
    return live >= 0;
  }());
}
