// Fixture: justified suppressions silence findings — this file must be clean.
#include <chrono>
#include <string>
#include <unordered_map>

long Now() {
  // simlint: allow(wall-clock) -- fixture exercises previous-line suppression
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

int Total(int* metrics_cell) {
  std::unordered_map<std::string, int> counts;
  int total = 0;
  for (const auto& [key, value] : counts) {  // simlint: allow(unordered-iter) -- fixture exercises same-line suppression
    *metrics_cell += value;
    total += value;
  }
  return total;
}
