// Fixture: dangling-capture — by-reference captures escaping into callbacks
// the event loop runs after the enclosing frame is gone. Lint under a src/
// label; the rule is scoped to component code.
struct Loop {
  template <typename F>
  void ScheduleAt(long when, F f);
  template <typename F>
  void ScheduleAfter(long delay, F f);
};
struct PeriodicTask {
  template <typename F>
  PeriodicTask(Loop* loop, long interval, F f);
};

void Schedule(Loop& loop) {
  int local = 0;
  loop.ScheduleAt(10, [&] { ++local; });          // line 17: [&]
  loop.ScheduleAfter(5, [&local] { ++local; });   // line 18: [&local]
  loop.ScheduleAt(20, [&v = local] { ++v; });     // line 19: by-ref init-capture
  PeriodicTask sweep(&loop, 10, [&] { ++local; });  // line 20: periodic callback
  loop.ScheduleAt(30, [p = &local] { ++*p; });    // clean: address-of, by value
  loop.ScheduleAt(40, [local] { (void)local; });  // clean: by value
}
