// Fixture: ambient-rng rule.
#include <cstdlib>
#include <ctime>
#include <random>

int Sample() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // line 7: ambient-rng (x2)
  std::random_device rd;                                  // line 8: ambient-rng
  std::mt19937 gen(rd());                                 // line 9: ambient-rng
  return std::rand() + static_cast<int>(gen());           // line 10: ambient-rng
}
