// Fixture: unordered-iter rule.
#include <string>
#include <unordered_map>
#include <unordered_set>

int Total() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> ids;
  counts["a"] = 1;
  int total = 0;
  for (const auto& [key, value] : counts) {  // line 11: unordered-iter
    total += value;
  }
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // line 14: unordered-iter
    total += *it;
  }
  return total;
}
