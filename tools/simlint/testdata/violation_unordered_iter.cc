// Fixture: flow-aware unordered-iter — only iterations whose bodies reach
// event-visible state (scheduling, metrics, RNG, trace) fire.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Loop {
  void ScheduleAt(long when, int id);
};
struct Series {
  void Observe(double v);
};

int Run(Loop& loop, Series& lat) {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> ids;
  counts["a"] = 1;
  for (const auto& [key, value] : counts) {  // line 20: body schedules an event
    loop.ScheduleAt(10, value);
  }
  lat.Observe(static_cast<double>(*ids.begin()));  // line 23: begin() feeds a metric
  int total = 0;
  for (const auto& [key, value] : counts) {  // clean: pure local accumulation
    total += value;
  }
  std::vector<int> sorted_ids(ids.begin(), ids.end());  // clean: copy...
  std::sort(sorted_ids.begin(), sorted_ids.end());      // ...then sort
  return total + static_cast<int>(sorted_ids.size());
}
