// Fixture: wall-clock rule. Each marked line must be flagged.
#include <chrono>

long Now() {
  auto a = std::chrono::steady_clock::now();          // line 5: wall-clock
  auto b = std::chrono::system_clock::now();          // line 6: wall-clock
  auto c = std::chrono::high_resolution_clock::now(); // line 7: wall-clock
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count();
}
