#include "tools/simlint/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace ofc::simlint {
namespace {

// ---- Source preprocessing ----------------------------------------------------

// `code` is the input with comments and string/char literals blanked out
// (newlines preserved, so line numbers survive); `comments` holds the comment
// text seen on each 1-based line, for suppression parsing.
struct Stripped {
  std::string code;
  std::map<int, std::string> comments;
};

Stripped Strip(std::string_view in) {
  Stripped out;
  out.code.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  int line = 1;
  std::string raw_delim;  // Closing delimiter of an in-flight raw string.
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                               in[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = in.find('(', i + 2);
          if (open == std::string_view::npos) {
            out.code += c;
            break;
          }
          raw_delim = ")" + std::string(in.substr(i + 2, open - (i + 2))) + "\"";
          out.code.append(open - i + 1, ' ');
          i = open;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
          out.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.code += ' ';
        } else {
          out.code += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.code += '\n';
        } else {
          out.comments[line] += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.code += "  ";
          ++i;
        } else if (c == '\n') {
          out.code += '\n';
        } else {
          out.comments[line] += c;
          out.code += ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out.code += "  ";
          ++i;
          if (next == '\n') {
            out.code.back() = '\n';
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out.code += ' ';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.code.append(raw_delim.size(), ' ');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
    if (c == '\n') {
      ++line;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

bool OnlyWhitespace(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

// ---- Suppressions ------------------------------------------------------------

struct Suppression {
  std::set<std::string> rules;  // "*" = all rules.
  bool justified = false;
};

// Parses `simlint: allow(rule-a,rule-b) -- justification` from comment text.
std::map<int, Suppression> ParseSuppressions(const Stripped& stripped,
                                             std::vector<Finding>* findings,
                                             const std::string& file) {
  static const std::regex kAllowRe(
      R"(simlint:\s*allow\(([A-Za-z*,\-\s]+)\)\s*(?:--\s*(\S.*))?)");
  std::map<int, Suppression> out;
  for (const auto& [line, text] : stripped.comments) {
    std::smatch m;
    if (!std::regex_search(text, m, kAllowRe)) {
      continue;
    }
    Suppression sup;
    std::stringstream rules(m[1].str());
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](unsigned char c) { return std::isspace(c) != 0; }),
                 rule.end());
      if (!rule.empty()) {
        sup.rules.insert(rule);
      }
    }
    sup.justified = m[2].matched;
    if (!sup.justified) {
      findings->push_back({file, line, "suppression",
                           "simlint suppression without a justification; write "
                           "`simlint: allow(rule) -- <why this is sound>`"});
    }
    out[line] = std::move(sup);
  }
  return out;
}

// ---- Rule helpers ------------------------------------------------------------

bool EndsWith(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Collects the names of variables/members declared as std::unordered_* in this
// file (token-level: the identifier following the closing `>` of the template
// argument list).
std::set<std::string> UnorderedNames(const std::string& code) {
  std::set<std::string> names;
  static const std::regex kDeclRe(R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDeclRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Find the matching `>` by depth counting from the opening `<`.
    std::size_t pos = static_cast<std::size_t>(it->position() + it->length());
    int depth = 1;
    while (pos < code.size() && depth > 0) {
      if (code[pos] == '<') {
        ++depth;
      } else if (code[pos] == '>') {
        --depth;
      }
      ++pos;
    }
    // Skip whitespace, then read the declared identifier (if any; using-alias
    // or function-return uses have none here and are fine to skip).
    while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < code.size() && (std::isalnum(static_cast<unsigned char>(code[pos])) ||
                                 code[pos] == '_')) {
      name += code[pos++];
    }
    if (!name.empty()) {
      names.insert(name);
    }
  }
  return names;
}

// Final identifier component of an expression like `segments_[i].entries` or
// `obj->map_` (the container actually iterated).
std::string FinalComponent(std::string expr) {
  while (!expr.empty() && (std::isspace(static_cast<unsigned char>(expr.back())) != 0)) {
    expr.pop_back();
  }
  std::size_t end = expr.size();
  std::size_t start = end;
  while (start > 0 && (std::isalnum(static_cast<unsigned char>(expr[start - 1])) ||
                       expr[start - 1] == '_')) {
    --start;
  }
  return expr.substr(start, end - start);
}

struct Rule {
  std::string id;
  std::regex pattern;
  std::string message;
};

const std::vector<Rule>& LineRules() {
  static const std::vector<Rule> rules = {
      {"wall-clock",
       std::regex(R"(\b(?:system_clock|steady_clock|high_resolution_clock)\b)"),
       "wall-clock access; all time must come from sim::EventLoop::now()"},
      {"ambient-rng",
       std::regex(R"((?:\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937\w*\b|\bdefault_random_engine\b|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)))"),
       "ambient randomness; all randomness must flow through ofc::Rng (src/common/rng.h)"},
      {"float-sim-time",
       std::regex(R"(\b(?:float|double)\s+\w*(?:sim_?time|when|deadline)\w*\s*[;={])"),
       "simulated time held in floating point; use the integral SimTime/SimDuration"},
      {"naked-new",
       std::regex(R"((?:^|[^:\w])new\s+[A-Za-z_(])"),
       "naked new; use std::make_unique/containers"},
      {"naked-new",
       std::regex(R"((?:^|[^:\w=\s]\s*|^\s*)delete(?:\[\])?\s+[A-Za-z_(*])"),
       "naked delete; ownership must live in smart pointers/containers"},
  };
  return rules;
}

}  // namespace

std::vector<Finding> LintSource(const std::string& file_label, std::string_view content,
                                const LintOptions& options) {
  std::vector<Finding> findings;
  const Stripped stripped = Strip(content);
  const std::map<int, Suppression> suppressions =
      ParseSuppressions(stripped, &findings, file_label);
  const std::vector<std::string> lines = SplitLines(stripped.code);

  const bool rng_exempt =
      std::any_of(options.rng_exempt_suffixes.begin(), options.rng_exempt_suffixes.end(),
                  [&](const std::string& suffix) { return EndsWith(file_label, suffix); });

  auto suppressed = [&](int line, const std::string& rule) {
    for (int candidate : {line, line - 1}) {
      auto it = suppressions.find(candidate);
      if (it == suppressions.end()) {
        continue;
      }
      // A suppression comment on its own line covers the line below it; an
      // end-of-line comment covers its own line.
      if (candidate == line - 1 &&
          !OnlyWhitespace(candidate - 1 < static_cast<int>(lines.size())
                              ? lines[static_cast<std::size_t>(candidate - 1)]
                              : std::string())) {
        continue;
      }
      // An unjustified suppression is itself a finding and earns no waiver.
      if (it->second.justified &&
          (it->second.rules.contains(rule) || it->second.rules.contains("*"))) {
        return true;
      }
    }
    return false;
  };

  auto report = [&](int line, const std::string& rule, const std::string& message) {
    if (!suppressed(line, rule)) {
      findings.push_back({file_label, line, rule, message});
    }
  };

  // Line-level pattern rules.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line = static_cast<int>(i) + 1;
    for (const Rule& rule : LineRules()) {
      if (rng_exempt && rule.id == "ambient-rng") {
        continue;
      }
      if (std::regex_search(lines[i], rule.pattern)) {
        report(line, rule.id, rule.message);
      }
    }
  }

  // unordered-iter: iteration over containers declared unordered in this file.
  const std::set<std::string> unordered = UnorderedNames(stripped.code);
  if (!unordered.empty()) {
    static const std::regex kRangeForRe(R"(\bfor\s*\(([^;()]*[^;()<>])\))");
    static const std::regex kBeginEndRe(R"(([A-Za-z_][\w\.\[\]\>\-]*)\s*\.\s*c?(?:begin|end)\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      const std::string& text = lines[i];
      std::smatch m;
      if (std::regex_search(text, m, kRangeForRe)) {
        const std::string head = m[1].str();
        const std::size_t colon = head.rfind(':');
        if (colon != std::string::npos && (colon == 0 || head[colon - 1] != ':') &&
            (colon + 1 >= head.size() || head[colon + 1] != ':')) {
          const std::string target = FinalComponent(head.substr(colon + 1));
          if (unordered.contains(target)) {
            report(line, "unordered-iter",
                   "iteration over unordered container '" + target +
                       "'; use std::map/sorted vector on event-visible or export paths");
          }
        }
      }
      for (auto it = std::sregex_iterator(text.begin(), text.end(), kBeginEndRe);
           it != std::sregex_iterator(); ++it) {
        const std::string target = FinalComponent((*it)[1].str());
        if (unordered.contains(target)) {
          report(line, "unordered-iter",
                 "begin()/end() on unordered container '" + target +
                     "'; bucket order is not deterministic");
          break;  // One finding per line is enough.
        }
      }
    }
  }

  // unguarded-trace: trace/flight-recorder emits in component code must sit
  // behind a cheap enabled()-style guard so disabled observability costs one
  // untaken branch, not argument formatting. The obs layer itself (which
  // implements the recorders and guards internally) is exempt.
  const bool trace_rule_applies = file_label.rfind("src/", 0) == 0 &&
                                  file_label.rfind("src/obs/", 0) != 0;
  if (trace_rule_applies) {
    static const std::regex kEmitRe(
        R"(([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*(?:->|\.)\s*(?:Span|Instant|CounterSample|Record)\s*\()");
    static const std::regex kGuardRe(R"(\b(?:enabled|Enabled|Sampled|Traced|FlightOn)\s*\()");
    constexpr int kGuardWindow = 10;  // Lines above the emit searched for a guard.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, kEmitRe)) {
        continue;
      }
      const std::string receiver = m[1].str();
      if (receiver.find("trace") == std::string::npos &&
          receiver.find("flight") == std::string::npos) {
        continue;  // Record()/Span() on something that is not a recorder.
      }
      bool guarded = false;
      for (int back = 0; back <= kGuardWindow && !guarded; ++back) {
        const int idx = static_cast<int>(i) - back;
        if (idx < 0) {
          break;
        }
        guarded = std::regex_search(lines[static_cast<std::size_t>(idx)], kGuardRe);
      }
      if (!guarded) {
        report(static_cast<int>(i) + 1, "unguarded-trace",
               "trace/flight emit via '" + receiver +
                   "' without a nearby enabled()/Sampled()/FlightOn() guard; "
                   "disabled observability must cost one branch, not formatting");
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line || (a.line == b.line && a.rule < b.rule);
  });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace ofc::simlint
