#include "tools/simlint/lint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

#include "tools/simlint/lexer.h"

namespace ofc::simlint {

bool SuppressionMap::IsSuppressed(int line, const std::string& rule) const {
  for (int candidate : {line, line - 1}) {
    auto it = by_line.find(candidate);
    if (it == by_line.end()) {
      continue;
    }
    // A suppression comment on its own line covers the line below it; an
    // end-of-line comment covers its own line.
    if (candidate == line - 1 && lines_with_tokens.contains(candidate)) {
      continue;
    }
    // An unjustified suppression is itself a finding and earns no waiver.
    if (it->second.justified &&
        (it->second.rules.contains(rule) || it->second.rules.contains("*"))) {
      return true;
    }
  }
  return false;
}

namespace {

bool EndsWith(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& value, const std::string& prefix) {
  return value.rfind(prefix, 0) == 0;
}

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// ---- The analyzer ------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const std::string& file_label, std::string_view content,
           const LintOptions& options)
      : file_(file_label), options_(options), lexed_(Lex(content)) {
    in_src_ = StartsWith(file_, "src/");
    in_obs_ = StartsWith(file_, "src/obs/");
    rng_exempt_ = std::any_of(
        options_.rng_exempt_suffixes.begin(), options_.rng_exempt_suffixes.end(),
        [&](const std::string& suffix) { return EndsWith(file_, suffix); });
    for (const Token& t : lexed_.tokens) {
      out_.suppressions.lines_with_tokens.insert(t.line);
    }
  }

  FileAnalysis Run() {
    ParseSuppressions();
    TokenRules();
    UnguardedTrace();
    UnorderedPass();
    DanglingCapture();
    DcheckSideEffect();
    IncludesAndMetrics();
    std::sort(out_.findings.begin(), out_.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) {
                  return a.line < b.line;
                }
                if (a.rule != b.rule) {
                  return a.rule < b.rule;
                }
                return a.message < b.message;
              });
    return std::move(out_);
  }

 private:
  using Toks = std::vector<Token>;

  const Token& Tok(std::size_t i) const { return lexed_.tokens[i]; }
  std::size_t Size() const { return lexed_.tokens.size(); }
  bool IsId(std::size_t i, const char* text) const {
    return i < Size() && Tok(i).kind == TokKind::kIdentifier && Tok(i).text == text;
  }
  bool IsPunct(std::size_t i, const char* text) const {
    return i < Size() && Tok(i).kind == TokKind::kPunct && Tok(i).text == text;
  }

  void Report(int line, const std::string& rule, const std::string& message) {
    if (!out_.suppressions.IsSuppressed(line, rule)) {
      out_.findings.push_back({file_, line, rule, message, "", false});
    }
  }

  // Index just past the token matching the opener at `open` ('(' / '[' / '{').
  // Returns Size() when unbalanced.
  std::size_t Match(std::size_t open) const {
    const std::string& o = Tok(open).text;
    const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
    int depth = 0;
    for (std::size_t i = open; i < Size(); ++i) {
      if (Tok(i).kind != TokKind::kPunct) {
        continue;
      }
      if (Tok(i).text == o) {
        ++depth;
      } else if (Tok(i).text == c) {
        if (--depth == 0) {
          return i;
        }
      }
    }
    return Size();
  }

  // For a '<' at `open`, finds the matching '>' by depth counting; gives up
  // (returns Size()) at ';' or '{', which signal "not a template list".
  std::size_t MatchAngle(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < Size(); ++i) {
      if (Tok(i).kind != TokKind::kPunct) {
        continue;
      }
      const std::string& t = Tok(i).text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) {
          return i;
        }
      } else if (t == ";" || t == "{") {
        break;
      }
    }
    return Size();
  }

  // ---- Suppressions ----------------------------------------------------------

  void ParseSuppressions() {
    static const std::regex kAllowRe(
        R"(simlint:\s*allow\(([A-Za-z*,\-\s]+)\)\s*(?:--\s*(\S.*))?)");
    for (const Comment& comment : lexed_.comments) {
      std::smatch m;
      if (!std::regex_search(comment.text, m, kAllowRe)) {
        continue;
      }
      SuppressionMap::Entry entry;
      std::stringstream rules(m[1].str());
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](unsigned char c) { return std::isspace(c) != 0; }),
                   rule.end());
        if (!rule.empty()) {
          entry.rules.insert(rule);
        }
      }
      entry.justified = m[2].matched;
      if (!entry.justified) {
        out_.findings.push_back(
            {file_, comment.line, "suppression",
             "simlint suppression without a justification; write "
             "`simlint: allow(rule) -- <why this is sound>`",
             "", false});
      }
      out_.suppressions.by_line[comment.line] = std::move(entry);
    }
  }

  // ---- Simple token rules ----------------------------------------------------

  void TokenRules() {
    static const std::set<std::string> kClocks = {"system_clock", "steady_clock",
                                                  "high_resolution_clock"};
    static const std::set<std::string> kRngIds = {"random_device",
                                                  "default_random_engine"};
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != TokKind::kIdentifier) {
        continue;
      }
      if (kClocks.contains(t.text)) {
        Report(t.line, "wall-clock",
               "wall-clock access; all time must come from sim::EventLoop::now()");
        continue;
      }
      if (!rng_exempt_) {
        const bool is_rng_call =
            ((t.text == "rand" || t.text == "srand") && IsPunct(i + 1, "("));
        const bool is_rng_type =
            kRngIds.contains(t.text) || StartsWith(t.text, "mt19937");
        bool is_time_call = false;
        if (t.text == "time" && IsPunct(i + 1, "(")) {
          // time(), time(0), time(NULL), time(nullptr).
          const std::size_t a = i + 2;
          is_time_call = IsPunct(a, ")") ||
                         ((IsId(a, "nullptr") || IsId(a, "NULL") ||
                           (a < Size() && Tok(a).kind == TokKind::kNumber &&
                            Tok(a).text == "0")) &&
                          IsPunct(a + 1, ")"));
        }
        if (is_rng_call || is_rng_type || is_time_call) {
          Report(t.line, "ambient-rng",
                 "ambient randomness; all randomness must flow through ofc::Rng "
                 "(src/common/rng.h)");
          continue;
        }
      }
      if ((t.text == "float" || t.text == "double") && i + 2 < Size() &&
          Tok(i + 1).kind == TokKind::kIdentifier) {
        const std::string name = Lower(Tok(i + 1).text);
        const bool timeish = name.find("sim_time") != std::string::npos ||
                             name.find("simtime") != std::string::npos ||
                             name.find("when") != std::string::npos ||
                             name.find("deadline") != std::string::npos;
        if (timeish && (IsPunct(i + 2, ";") || IsPunct(i + 2, "=") || IsPunct(i + 2, "{"))) {
          Report(t.line, "float-sim-time",
                 "simulated time held in floating point; use the integral "
                 "SimTime/SimDuration");
        }
        continue;
      }
      if (t.text == "new" && !IsPunct(i - 1, "::") &&
          !(i > 0 && IsId(i - 1, "operator")) && i + 1 < Size() &&
          (Tok(i + 1).kind == TokKind::kIdentifier || IsPunct(i + 1, "("))) {
        Report(t.line, "naked-new", "naked new; use std::make_unique/containers");
        continue;
      }
      if (t.text == "delete" && !(i > 0 && IsId(i - 1, "operator")) &&
          !(i > 0 && IsPunct(i - 1, "="))) {
        std::size_t a = i + 1;
        if (IsPunct(a, "[") && IsPunct(a + 1, "]")) {
          a += 2;
        }
        if (a < Size() && (Tok(a).kind == TokKind::kIdentifier || IsPunct(a, "(") ||
                           IsPunct(a, "*"))) {
          Report(t.line, "naked-new",
                 "naked delete; ownership must live in smart pointers/containers");
        }
        continue;
      }
    }
  }

  // ---- unguarded-trace -------------------------------------------------------

  void UnguardedTrace() {
    if (!in_src_ || in_obs_) {
      return;
    }
    static const std::set<std::string> kEmits = {"Span", "Instant", "CounterSample",
                                                 "Record"};
    static const std::set<std::string> kGuards = {"enabled", "Enabled", "Sampled",
                                                  "Traced", "FlightOn"};
    // Lines containing a guard call.
    std::set<int> guard_lines;
    for (std::size_t i = 0; i + 1 < Size(); ++i) {
      if (Tok(i).kind == TokKind::kIdentifier && kGuards.contains(Tok(i).text) &&
          IsPunct(i + 1, "(")) {
        guard_lines.insert(Tok(i).line);
      }
    }
    constexpr int kGuardWindow = 10;
    for (std::size_t i = 0; i + 1 < Size(); ++i) {
      if (Tok(i).kind != TokKind::kIdentifier || !kEmits.contains(Tok(i).text) ||
          !IsPunct(i + 1, "(")) {
        continue;
      }
      if (!(IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
        continue;
      }
      // Receiver: walk back over an optional `()` call and take the
      // identifier (e.g. `trace_->`, `flight()->`, `recorder.trace().`).
      std::size_t r = i - 2;
      if (r < Size() && IsPunct(r, ")") && r >= 1 && IsPunct(r - 1, "(")) {
        r -= 2;
      }
      if (r >= Size() || Tok(r).kind != TokKind::kIdentifier) {
        continue;
      }
      const std::string receiver = Lower(Tok(r).text);
      if (receiver.find("trace") == std::string::npos &&
          receiver.find("flight") == std::string::npos) {
        continue;
      }
      bool guarded = false;
      for (int back = 0; back <= kGuardWindow && !guarded; ++back) {
        guarded = guard_lines.contains(Tok(i).line - back);
      }
      if (!guarded) {
        Report(Tok(i).line, "unguarded-trace",
               "trace/flight emit via '" + Tok(r).text +
                   "' without a nearby enabled()/Sampled()/FlightOn() guard; "
                   "disabled observability must cost one branch, not formatting");
      }
    }
  }

  // ---- unordered-iter (flow-aware, scope-tracked) ----------------------------

  // True when the token range [begin, end) reaches event-visible state:
  // scheduling, metrics, RNG draws, or trace/flight emits.
  bool HasEventVisibleSink(std::size_t begin, std::size_t end) const {
    static const std::set<std::string> kSinks = {
        "ScheduleAt", "ScheduleAfter", "Observe",    "CounterSample", "Span",
        "Instant",    "GetCounter",    "GetGauge",   "GetSeries"};
    for (std::size_t i = begin; i < end && i < Size(); ++i) {
      if (Tok(i).kind != TokKind::kIdentifier) {
        continue;
      }
      if (kSinks.contains(Tok(i).text)) {
        return true;
      }
      const std::string lower = Lower(Tok(i).text);
      if (lower.find("rng") != std::string::npos ||
          lower.find("metrics") != std::string::npos ||
          lower.find("trace") != std::string::npos ||
          lower.find("flight") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // Token range of the statement/body that consumes an iteration at `i`:
  // for a range-for header close at `close`, the `{...}` block or single
  // statement after it; for begin()/end(), the enclosing statement.
  std::size_t StatementEnd(std::size_t from) const {
    for (std::size_t i = from; i < Size(); ++i) {
      if (IsPunct(i, ";")) {
        return i;
      }
      if (IsPunct(i, "{")) {
        return Match(i);
      }
    }
    return Size();
  }

  std::size_t StatementBegin(std::size_t from) const {
    for (std::size_t i = from; i > 0; --i) {
      if (IsPunct(i - 1, ";") || IsPunct(i - 1, "{") || IsPunct(i - 1, "}")) {
        return i;
      }
    }
    return 0;
  }

  void UnorderedPass() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    struct Scope {
      std::set<std::string> names;
      bool class_like = false;  // class/struct/namespace scope → exported.
    };
    std::vector<Scope> scopes(1);
    scopes.front().class_like = true;  // File scope counts as exported.

    auto visible = [&](const std::string& name) {
      return std::any_of(scopes.begin(), scopes.end(),
                         [&](const Scope& s) { return s.names.contains(name); });
    };

    for (std::size_t i = 0; i < Size(); ++i) {
      if (IsPunct(i, "{")) {
        Scope scope;
        // Classify: scan back to the previous ; { } for class/struct/namespace.
        for (std::size_t k = i; k > 0; --k) {
          if (IsPunct(k - 1, ";") || IsPunct(k - 1, "{") || IsPunct(k - 1, "}")) {
            break;
          }
          if (IsId(k - 1, "class") || IsId(k - 1, "struct") || IsId(k - 1, "namespace")) {
            scope.class_like = true;
            break;
          }
        }
        scopes.push_back(scope);
        continue;
      }
      if (IsPunct(i, "}")) {
        if (scopes.size() > 1) {
          scopes.pop_back();
        }
        continue;
      }

      // Declarations: unordered_xxx<...> [&*]? name [;={(,)]
      if (Tok(i).kind == TokKind::kIdentifier && kUnordered.contains(Tok(i).text) &&
          IsPunct(i + 1, "<")) {
        std::size_t close = MatchAngle(i + 1);
        if (close == Size()) {
          continue;
        }
        std::size_t p = close + 1;
        while (IsPunct(p, "&") || IsPunct(p, "*") || IsId(p, "const")) {
          ++p;
        }
        if (p < Size() && Tok(p).kind == TokKind::kIdentifier) {
          const std::string& name = Tok(p).text;
          if (IsPunct(p + 1, ";") || IsPunct(p + 1, "=") || IsPunct(p + 1, "{") ||
              IsPunct(p + 1, "(") || IsPunct(p + 1, ",") || IsPunct(p + 1, ")")) {
            scopes.back().names.insert(name);
            if (scopes.back().class_like) {
              out_.unordered_members.push_back(name);
            }
          }
        }
        continue;
      }

      // Range-for: for ( ... : target )
      if (IsId(i, "for") && IsPunct(i + 1, "(")) {
        const std::size_t close = Match(i + 1);
        if (close == Size()) {
          continue;
        }
        // Top-level ':' inside the header (not '::', not nested).
        std::size_t colon = Size();
        int depth = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (Tok(k).kind != TokKind::kPunct) {
            continue;
          }
          const std::string& t = Tok(k).text;
          if (t == "(" || t == "[" || t == "{") {
            ++depth;
          } else if (t == ")" || t == "]" || t == "}") {
            --depth;
          } else if (t == ":" && depth == 0) {
            colon = k;
            break;
          }
        }
        if (colon == Size()) {
          continue;
        }
        // Final identifier of the target expression = the container iterated.
        std::string target;
        int target_line = Tok(colon).line;
        for (std::size_t k = close; k > colon; --k) {
          if (Tok(k - 1).kind == TokKind::kIdentifier) {
            target = Tok(k - 1).text;
            target_line = Tok(k - 1).line;
            break;
          }
        }
        if (target.empty()) {
          continue;
        }
        const std::size_t body_end = StatementEnd(close + 1);
        const bool sink = HasEventVisibleSink(close + 1, body_end);
        if (visible(target)) {
          if (sink) {
            Report(target_line, "unordered-iter",
                   "iteration over unordered container '" + target +
                       "' reaches event-visible state (scheduling/metrics/RNG/"
                       "trace); use std::map or a sorted vector");
          }
        } else if (sink && Tok(colon + 1).kind == TokKind::kIdentifier) {
          // Unresolved in-file: candidate for the cross-file pass. Only worth
          // exporting when a sink is present.
          out_.iteration_sites.push_back({target, target_line});
        }
        continue;
      }

      // x.begin() style iteration. Only the begin() family counts: every real
      // iteration calls begin(), while a lone end() is almost always a
      // `find(...) != end()` membership check with deterministic result.
      static const std::set<std::string> kBeginEnd = {"begin", "cbegin", "rbegin"};
      if (Tok(i).kind == TokKind::kIdentifier && kBeginEnd.contains(Tok(i).text) &&
          IsPunct(i + 1, "(") && i >= 2 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) &&
          Tok(i - 2).kind == TokKind::kIdentifier) {
        const std::string& target = Tok(i - 2).text;
        const std::size_t stmt_begin = StatementBegin(i);
        const std::size_t stmt_end = StatementEnd(i);
        const bool sink = HasEventVisibleSink(stmt_begin, stmt_end);
        if (visible(target)) {
          if (sink) {
            Report(Tok(i).line, "unordered-iter",
                   "begin()/end() on unordered container '" + target +
                       "' feeds event-visible state; bucket order is not "
                       "deterministic");
          }
        } else if (sink) {
          out_.iteration_sites.push_back({target, Tok(i).line});
        }
        continue;
      }
    }
    std::sort(out_.unordered_members.begin(), out_.unordered_members.end());
    out_.unordered_members.erase(
        std::unique(out_.unordered_members.begin(), out_.unordered_members.end()),
        out_.unordered_members.end());
  }

  // ---- dangling-capture ------------------------------------------------------

  void DanglingCapture() {
    if (!in_src_) {
      return;
    }
    static const std::set<std::string> kSchedulers = {"ScheduleAt", "ScheduleAfter",
                                                      "PeriodicTask"};
    for (std::size_t i = 0; i < Size(); ++i) {
      if (Tok(i).kind != TokKind::kIdentifier || !kSchedulers.contains(Tok(i).text)) {
        continue;
      }
      // The argument list opens within the next few tokens: `ScheduleAt(`,
      // `PeriodicTask sweep(`, `make_unique<PeriodicTask>(`.
      std::size_t open = Size();
      for (std::size_t k = i + 1; k < i + 4 && k < Size(); ++k) {
        if (IsPunct(k, "(")) {
          open = k;
          break;
        }
        if (Tok(k).kind != TokKind::kIdentifier && !IsPunct(k, ">")) {
          break;
        }
      }
      if (open == Size()) {
        continue;
      }
      const std::size_t close = Match(open);
      for (std::size_t k = open + 1; k < close; ++k) {
        if (!IsPunct(k, "[")) {
          continue;
        }
        // Lambda introducer vs subscript: a lambda's '[' follows '(', ',',
        // '=', '{' or a keyword, never a value expression.
        const bool lambda = IsPunct(k - 1, "(") || IsPunct(k - 1, ",") ||
                            IsPunct(k - 1, "=") || IsPunct(k - 1, "{") ||
                            IsId(k - 1, "return");
        const std::size_t intro_close = Match(k);
        if (!lambda || intro_close == Size()) {
          continue;
        }
        for (std::size_t c = k + 1; c < intro_close; ++c) {
          if (!IsPunct(c, "&") && !IsPunct(c, "&&")) {
            continue;
          }
          // A by-reference capture's '&' starts a capture item, i.e. directly
          // follows '[' or ','. Elsewhere ('t = &x') it is address-of, which
          // is by-value and fine.
          if (!IsPunct(c - 1, "[") && !IsPunct(c - 1, ",")) {
            continue;
          }
          Report(Tok(k).line, "dangling-capture",
                 "by-reference capture in a callback scheduled into the event "
                 "loop via " + Tok(i).text +
                     "; the frame is gone when the callback runs — capture by "
                     "value (and guarantee the lifetime of captured pointers)");
          break;
        }
        k = intro_close;
      }
      i = open;
    }
  }

  // ---- dcheck-side-effect ----------------------------------------------------

  // Root identifier of the postfix chain ending at token `k` (inclusive):
  // walks back over `a.b`, `a->b`, `a[i].b` chains. Empty when the chain
  // does not start at a plain identifier.
  std::string ChainRootBack(std::size_t k) const {
    while (k < Size()) {
      if (Tok(k).kind == TokKind::kPunct && Tok(k).text == "]") {
        // Skip the bracketed subscript backwards.
        int depth = 0;
        while (k < Size()) {
          if (IsPunct(k, "]")) {
            ++depth;
          } else if (IsPunct(k, "[")) {
            if (--depth == 0) {
              break;
            }
          }
          if (k == 0) {
            return "";
          }
          --k;
        }
        if (k == 0) {
          return "";
        }
        --k;
        continue;
      }
      if (Tok(k).kind != TokKind::kIdentifier) {
        return "";
      }
      if (k >= 2 && (IsPunct(k - 1, ".") || IsPunct(k - 1, "->")) &&
          (Tok(k - 2).kind == TokKind::kIdentifier || IsPunct(k - 2, "]"))) {
        k -= 2;
        continue;
      }
      return Tok(k).text;
    }
    return "";
  }

  void DcheckSideEffect() {
    static const std::set<std::string> kMacros = {"SIM_DCHECK", "SIM_ASSERT"};
    static const std::set<std::string> kAssignOps = {"=",  "+=", "-=",  "*=",  "/=",
                                                     "%=", "&=", "|=",  "^=",  "<<=",
                                                     ">>="};
    static const std::set<std::string> kMutators = {
        "erase",        "clear",      "insert",     "emplace",   "emplace_back",
        "emplace_front", "push_back", "push_front", "pop_back",  "pop_front",
        "reset",        "release",    "swap",       "assign",    "resize"};
    for (std::size_t i = 0; i + 1 < Size(); ++i) {
      if (Tok(i).kind != TokKind::kIdentifier || !kMacros.contains(Tok(i).text) ||
          !IsPunct(i + 1, "(")) {
        continue;
      }
      const std::size_t open = i + 1;
      const std::size_t close = Match(open);
      if (close == Size()) {
        continue;
      }
      const std::string& macro = Tok(i).text;

      // Pass 1: names declared inside the macro argument (IIFE locals, lambda
      // parameters, loop variables, init captures) are invisible outside —
      // mutating them is fine. Also mark declaration-initializer '=' tokens
      // and lambda capture introducer ranges.
      std::set<std::string> locals;
      std::set<std::size_t> init_eq;       // '=' tokens that are initializers.
      std::set<std::size_t> intro_tokens;  // Tokens inside [...] introducers.
      for (std::size_t k = open + 1; k < close; ++k) {
        // Lambda capture introducer (or structured binding bracket).
        if (IsPunct(k, "[") &&
            (IsPunct(k - 1, "(") || IsPunct(k - 1, ",") || IsPunct(k - 1, "=") ||
             IsPunct(k - 1, "{") || IsId(k - 1, "return") || IsId(k - 1, "auto") ||
             IsPunct(k - 1, "&"))) {
          const std::size_t intro_close = Match(k);
          for (std::size_t c = k; c <= intro_close && c < close; ++c) {
            intro_tokens.insert(c);
            if (Tok(c).kind == TokKind::kIdentifier && !IsId(c, "this")) {
              // Captured / bound names behave like locals of the expression:
              // by-value captures mutate the closure's copy, structured
              // bindings are fresh names.
              locals.insert(Tok(c).text);
            }
          }
          k = intro_close;
          continue;
        }
        // Two-token declaration pattern: <type-ish> <name> <terminator>.
        if (Tok(k).kind == TokKind::kIdentifier && k + 1 < close && k > open) {
          const Token& prev = Tok(k - 1);
          const bool typeish =
              prev.kind == TokKind::kIdentifier ||
              (prev.kind == TokKind::kPunct &&
               (prev.text == "&" || prev.text == "*" || prev.text == ">"));
          if (!typeish) {
            continue;
          }
          // `a ? b : c`, `a.b`, casts etc. never put two identifiers back to
          // back, so <id> <id> is a declaration for our purposes.
          if (prev.kind == TokKind::kIdentifier &&
              (IsPunct(k - 2, ".") || IsPunct(k - 2, "->") || IsPunct(k - 2, "::"))) {
            continue;  // Qualified name, not "type name".
          }
          const std::string& next = Tok(k + 1).text;
          if (Tok(k + 1).kind == TokKind::kPunct &&
              (next == "=" || next == ";" || next == ":" || next == "," ||
               next == ")" || next == "{")) {
            locals.insert(Tok(k).text);
            if (next == "=") {
              init_eq.insert(k + 1);
            }
          }
        }
      }

      // Pass 2: flag side effects whose target lives outside the expression.
      auto flag = [&](int line, const std::string& what, const std::string& root) {
        Report(line, "dcheck-side-effect",
               what + (root.empty() ? std::string() : " on '" + root + "'") +
                   " inside " + macro +
                   "; the argument compiles out in Release builds, taking the "
                   "side effect with it — hoist the mutation out of the macro");
      };
      for (std::size_t k = open + 1; k < close; ++k) {
        if (Tok(k).kind != TokKind::kPunct || intro_tokens.contains(k)) {
          continue;
        }
        const std::string& t = Tok(k).text;
        if (t == "++" || t == "--") {
          std::string root;
          if (k + 1 < close && Tok(k + 1).kind == TokKind::kIdentifier &&
              !(k > open && (Tok(k - 1).kind == TokKind::kIdentifier ||
                             IsPunct(k - 1, "]") || IsPunct(k - 1, ")")))) {
            root = Tok(k + 1).text;  // Prefix.
          } else {
            root = ChainRootBack(k - 1);  // Postfix.
          }
          if (!locals.contains(root)) {
            flag(Tok(k).line, t == "++" ? "increment" : "decrement", root);
          }
          continue;
        }
        if (kAssignOps.contains(t)) {
          if (init_eq.contains(k)) {
            continue;
          }
          const std::string root = ChainRootBack(k - 1);
          if (!locals.contains(root)) {
            flag(Tok(k).line, "assignment", root);
          }
          continue;
        }
        if ((t == "." || t == "->") && k + 2 < close &&
            Tok(k + 1).kind == TokKind::kIdentifier &&
            kMutators.contains(Tok(k + 1).text) && IsPunct(k + 2, "(")) {
          const std::string root = ChainRootBack(k - 1);
          if (!locals.contains(root)) {
            flag(Tok(k + 1).line, "mutating call '." + Tok(k + 1).text + "()'", root);
          }
          continue;
        }
      }
      i = close;
    }
  }

  // ---- Includes, metric registrations, metric grammar ------------------------

  void IncludesAndMetrics() {
    static const std::map<std::string, std::string> kRegs = {
        {"GetCounter", "counter"}, {"GetGauge", "gauge"}, {"GetSeries", "series"}};
    static const std::regex kNameRe(R"(^ofc\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$)");
    for (std::size_t i = 0; i < Size(); ++i) {
      if (IsPunct(i, "#") && IsId(i + 1, "include") && i + 2 < Size() &&
          Tok(i + 2).kind == TokKind::kString) {
        out_.includes.push_back({Tok(i + 2).text, Tok(i + 2).line});
        continue;
      }
      if (Tok(i).kind == TokKind::kIdentifier && kRegs.contains(Tok(i).text) &&
          IsPunct(i + 1, "(") && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
        const std::string& kind = kRegs.at(Tok(i).text);
        if (i + 2 < Size() && Tok(i + 2).kind == TokKind::kString) {
          const std::string& name = Tok(i + 2).text;
          out_.metrics.push_back({name, kind, Tok(i + 2).line});
          if (in_src_ && !std::regex_match(name, kNameRe)) {
            Report(Tok(i + 2).line, "metric-name-audit",
                   "metric family name '" + name +
                       "' violates the grammar `ofc.<component>.<name>` "
                       "(lower_snake segments, exactly three)");
          }
        } else if (in_src_) {
          Report(Tok(i).line, "metric-name-audit",
                 "metric family name passed to " + Tok(i).text +
                     " must be a string literal so it can be audited against "
                     "the DESIGN.md metrics table");
        }
      }
    }
  }

  std::string file_;
  const LintOptions& options_;
  LexResult lexed_;
  FileAnalysis out_;
  bool in_src_ = false;
  bool in_obs_ = false;
  bool rng_exempt_ = false;
};

}  // namespace

FileAnalysis AnalyzeSource(const std::string& file_label, std::string_view content,
                           const LintOptions& options) {
  return Analyzer(file_label, content, options).Run();
}

std::vector<Finding> LintSource(const std::string& file_label, std::string_view content,
                                const LintOptions& options) {
  return AnalyzeSource(file_label, content, options).findings;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  if (finding.baselined) {
    out << " (baselined)";
  }
  return out.str();
}

}  // namespace ofc::simlint
