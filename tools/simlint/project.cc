#include "tools/simlint/project.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace ofc::simlint {
namespace {

// ---- Small utilities ---------------------------------------------------------

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

// Whitespace-collapsed, trimmed content of `line` (1-based) — the anchor text
// finding ids hash over.
std::string AnchorText(const std::vector<std::string>& lines, int line) {
  if (line < 1 || line > static_cast<int>(lines.size())) {
    return "";
  }
  const std::string& raw = lines[static_cast<std::size_t>(line - 1)];
  std::string out;
  bool pending_space = false;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
    } else {
      if (pending_space) {
        out += ' ';
        pending_space = false;
      }
      out += c;
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.id < b.id;
  });
}

// ---- Architecture DAG --------------------------------------------------------

// Subsystem → the subsystems it may include. Derived from (and enforcing) the
// architecture documented in DESIGN.md §8: common at the bottom; sim/obs/ml
// above it; workloads over ml; ramcloud/store over sim+obs; faas over
// store+workloads; core over everything below it; fault and faasload drive the
// assembled system from the top.
const std::map<std::string, std::set<std::string>>& LayerDag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      {"common", {}},
      {"sim", {"common"}},
      {"obs", {"common"}},
      {"ml", {"common"}},
      {"workloads", {"common", "ml"}},
      {"ramcloud", {"common", "sim", "obs"}},
      {"store", {"common", "sim", "obs"}},
      {"faas", {"common", "sim", "obs", "store", "workloads"}},
      {"core", {"common", "sim", "obs", "ml", "ramcloud", "store", "workloads", "faas"}},
      {"fault", {"common", "sim", "obs", "ramcloud", "store", "faas", "core"}},
      {"faasload",
       {"common", "sim", "obs", "ramcloud", "store", "workloads", "faas", "core"}},
  };
  return dag;
}

// "src/sim/event_loop.h" → "sim"; "" when not under src/.
std::string SubsystemOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) {
    return "";
  }
  const std::size_t start = 4;
  const std::size_t slash = path.find('/', start);
  if (slash == std::string::npos) {
    return "";  // A file directly under src/ belongs to no subsystem.
  }
  return path.substr(start, slash - start);
}

std::string JoinSorted(const std::set<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) {
      out += ", ";
    }
    out += item;
  }
  return out.empty() ? "nothing" : out;
}

// ---- DESIGN.md metrics table -------------------------------------------------

struct DesignMetricRow {
  std::string kind;
  int line = 0;  // 1-based line in DESIGN.md.
};

// Parses `| `ofc.x.y` | kind | ...` table rows anywhere in DESIGN.md.
std::map<std::string, DesignMetricRow> ParseDesignMetrics(std::string_view design_md) {
  std::map<std::string, DesignMetricRow> rows;
  const std::vector<std::string> lines = SplitLines(design_md);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '|') {
      continue;
    }
    // First cell: `name`.
    std::size_t tick1 = line.find('`', p);
    if (tick1 == std::string::npos) {
      continue;
    }
    std::size_t tick2 = line.find('`', tick1 + 1);
    if (tick2 == std::string::npos) {
      continue;
    }
    const std::string name = line.substr(tick1 + 1, tick2 - tick1 - 1);
    if (name.rfind("ofc.", 0) != 0) {
      continue;
    }
    // Second cell: the kind word.
    std::size_t bar = line.find('|', tick2);
    if (bar == std::string::npos) {
      continue;
    }
    std::size_t k = line.find_first_not_of(" \t", bar + 1);
    std::string kind;
    while (k != std::string::npos && k < line.size() &&
           (std::isalpha(static_cast<unsigned char>(line[k])) != 0)) {
      kind += line[k++];
    }
    if (kind == "counter" || kind == "gauge" || kind == "series") {
      rows[name] = {kind, static_cast<int>(i) + 1};
    }
  }
  return rows;
}

}  // namespace

std::uint64_t Fnv64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ProjectResult AnalyzeProject(const std::vector<SourceFile>& files,
                             const ProjectOptions& options) {
  ProjectResult result;
  result.files_scanned = files.size();

  // Per-file analyses, in sorted path order so every downstream aggregation is
  // deterministic regardless of input order.
  std::vector<const SourceFile*> sorted;
  sorted.reserve(files.size());
  for (const SourceFile& f : files) {
    sorted.push_back(&f);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SourceFile* a, const SourceFile* b) { return a->path < b->path; });

  std::map<std::string, FileAnalysis> analyses;
  std::map<std::string, std::vector<std::string>> file_lines;
  for (const SourceFile* f : sorted) {
    analyses[f->path] = AnalyzeSource(f->path, f->content, options.lint);
    file_lines[f->path] = SplitLines(f->content);
    for (Finding& finding : analyses[f->path].findings) {
      result.findings.push_back(std::move(finding));
    }
  }

  if (options.project_rules) {
    // ---- layer-cycle: DAG conformance ---------------------------------------
    for (const SourceFile* f : sorted) {
      const std::string from = SubsystemOf(f->path);
      if (from.empty()) {
        continue;
      }
      const auto& suppressions = analyses[f->path].suppressions;
      auto dag_it = LayerDag().find(from);
      for (const IncludeDecl& inc : analyses[f->path].includes) {
        const std::string to = SubsystemOf(inc.path);
        if (to.empty() || to == from) {
          continue;
        }
        if (suppressions.IsSuppressed(inc.line, "layer-cycle")) {
          continue;
        }
        if (dag_it == LayerDag().end()) {
          result.findings.push_back(
              {f->path, inc.line, "layer-cycle",
               "subsystem 'src/" + from +
                   "' is not in the architecture DAG; add it to kLayerDag "
                   "(tools/simlint/project.cc) and DESIGN.md §8",
               "", false});
          break;  // One finding per unknown subsystem file is enough.
        }
        if (!dag_it->second.contains(to)) {
          const bool known = LayerDag().contains(to);
          result.findings.push_back(
              {f->path, inc.line, "layer-cycle",
               "layering violation: src/" + from + " may not include src/" + to +
                   (known ? " (allowed below src/" + from + ": " +
                                JoinSorted(dag_it->second) + ")"
                          : " (unknown subsystem; extend the DAG if intentional)"),
               "", false});
        }
      }
    }

    // ---- layer-cycle: file-level include cycles ------------------------------
    {
      std::map<std::string, std::vector<std::string>> graph;
      for (const SourceFile* f : sorted) {
        std::vector<std::string> edges;
        for (const IncludeDecl& inc : analyses[f->path].includes) {
          if (analyses.contains(inc.path)) {
            edges.push_back(inc.path);
          }
        }
        std::sort(edges.begin(), edges.end());
        graph[f->path] = std::move(edges);
      }
      std::set<std::string> reported_cycles;
      std::map<std::string, int> color;  // 0 white, 1 gray, 2 black.
      std::vector<std::string> stack;
      // Recursive DFS; include chains are shallow (bounded by the layer DAG).
      std::function<void(const std::string&)> dfs = [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : graph[node]) {
          if (color[next] == 0) {
            dfs(next);
          } else if (color[next] == 1) {
            // Extract the cycle from the stack.
            auto it = std::find(stack.begin(), stack.end(), next);
            std::vector<std::string> cycle(it, stack.end());
            // Normalize: rotate so the smallest path leads.
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            std::string pretty;
            for (const std::string& p : cycle) {
              key += p + "|";
              pretty += p + " -> ";
            }
            pretty += cycle.front();
            if (reported_cycles.insert(key).second) {
              // Anchor at the edge leaving the cycle's smallest path.
              int line = 1;
              for (const IncludeDecl& inc : analyses[cycle.front()].includes) {
                if (inc.path == cycle[1 % cycle.size()]) {
                  line = inc.line;
                  break;
                }
              }
              result.findings.push_back({cycle.front(), line, "layer-cycle",
                                         "include cycle: " + pretty, "", false});
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
      for (const SourceFile* f : sorted) {
        if (color[f->path] == 0) {
          dfs(f->path);
        }
      }
    }

    // ---- metric-name-audit: kind conflicts + DESIGN.md table -----------------
    struct RegSite {
      std::string file;
      std::string kind;
      int line;
    };
    std::map<std::string, std::vector<RegSite>> registry;
    for (const SourceFile* f : sorted) {
      if (f->path.rfind("src/", 0) != 0) {
        continue;  // Tests/tools/bench drive registries with scratch names.
      }
      for (const MetricReg& reg : analyses[f->path].metrics) {
        registry[reg.name].push_back({f->path, reg.kind, reg.line});
      }
    }
    const std::map<std::string, DesignMetricRow> design =
        options.design_md.empty() ? std::map<std::string, DesignMetricRow>{}
                                  : ParseDesignMetrics(options.design_md);
    for (const auto& [name, sites] : registry) {
      const RegSite& first = sites.front();
      const auto& suppressions = analyses[first.file].suppressions;
      std::set<std::string> kinds;
      for (const RegSite& site : sites) {
        kinds.insert(site.kind);
      }
      if (kinds.size() > 1) {
        std::string where;
        for (const RegSite& site : sites) {
          where += " " + site.file + ":" + std::to_string(site.line) + "(" + site.kind + ")";
        }
        if (!suppressions.IsSuppressed(first.line, "metric-name-audit")) {
          result.findings.push_back(
              {first.file, first.line, "metric-name-audit",
               "metric family '" + name + "' registered with conflicting kinds:" + where,
               "", false});
        }
      }
      if (!options.design_md.empty()) {
        auto row = design.find(name);
        if (row == design.end()) {
          if (!suppressions.IsSuppressed(first.line, "metric-name-audit")) {
            result.findings.push_back(
                {first.file, first.line, "metric-name-audit",
                 "metric family '" + name +
                     "' is not documented in the DESIGN.md metric inventory table "
                     "(regenerate with `simlint --list-metrics`)",
                 "", false});
          }
        } else if (kinds.size() == 1 && row->second.kind != first.kind) {
          result.findings.push_back(
              {options.design_md_label, row->second.line, "metric-name-audit",
               "DESIGN.md documents '" + name + "' as a " + row->second.kind +
                   " but the code registers a " + first.kind,
               "", false});
        }
      }
      result.metrics.push_back({name, *kinds.begin(), first.file});
    }
    if (!options.design_md.empty()) {
      for (const auto& [name, row] : design) {
        if (!registry.contains(name)) {
          result.findings.push_back(
              {options.design_md_label, row.line, "metric-name-audit",
               "DESIGN.md metric inventory lists '" + name +
                   "' but nothing in src/ registers it; drop the row or restore "
                   "the metric",
               "", false});
        }
      }
    }

    // ---- unordered-iter: cross-file members ----------------------------------
    for (const SourceFile* f : sorted) {
      const FileAnalysis& analysis = analyses[f->path];
      if (analysis.iteration_sites.empty()) {
        continue;
      }
      std::set<std::string> members(analysis.unordered_members.begin(),
                                    analysis.unordered_members.end());
      for (const IncludeDecl& inc : analysis.includes) {
        auto it = analyses.find(inc.path);
        if (it != analyses.end()) {
          members.insert(it->second.unordered_members.begin(),
                         it->second.unordered_members.end());
        }
      }
      for (const IterationSite& site : analysis.iteration_sites) {
        if (members.contains(site.target) &&
            !analysis.suppressions.IsSuppressed(site.line, "unordered-iter")) {
          result.findings.push_back(
              {f->path, site.line, "unordered-iter",
               "iteration over unordered container '" + site.target +
                   "' (declared in this file or an included header) reaches "
                   "event-visible state; use std::map or a sorted vector",
               "", false});
        }
      }
    }
  }

  // ---- Stable ids ------------------------------------------------------------
  SortFindings(&result.findings);
  const std::vector<std::string> design_lines = SplitLines(options.design_md);
  std::map<std::string, int> ordinals;  // (rule|file|anchor) → next ordinal.
  for (Finding& f : result.findings) {
    std::string anchor;
    if (f.file == options.design_md_label) {
      anchor = AnchorText(design_lines, f.line);
    } else {
      auto it = file_lines.find(f.file);
      anchor = it == file_lines.end() ? "" : AnchorText(it->second, f.line);
    }
    const std::string key = f.rule + "|" + f.file + "|" + anchor;
    const int ordinal = ordinals[key]++;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      Fnv64(key + "|" + std::to_string(ordinal))));
    f.id = f.rule + "-" + buf;
  }
  std::sort(result.metrics.begin(), result.metrics.end(),
            [](const MetricInventoryRow& a, const MetricInventoryRow& b) {
              return a.name < b.name;
            });
  return result;
}

// ---- Baseline ----------------------------------------------------------------

namespace {

// Minimal JSON reader for the baseline schema: an object containing an
// "entries" array of flat objects with string/number values.
class BaselineParser {
 public:
  explicit BaselineParser(std::string_view json) : s_(json) {}

  bool Parse(Baseline* out, std::string* error) {
    SkipWs();
    if (!Consume('{')) {
      return Fail(error, "expected '{'");
    }
    while (true) {
      SkipWs();
      if (Consume('}')) {
        return true;
      }
      std::string key;
      if (!ParseString(&key)) {
        return Fail(error, "expected key string");
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail(error, "expected ':'");
      }
      SkipWs();
      if (key == "entries") {
        if (!ParseEntries(out, error)) {
          return false;
        }
      } else if (!SkipValue()) {
        return Fail(error, "bad value for key '" + key + "'");
      }
      SkipWs();
      Consume(',');
    }
  }

 private:
  bool ParseEntries(Baseline* out, std::string* error) {
    if (!Consume('[')) {
      return Fail(error, "expected '['");
    }
    while (true) {
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      if (!Consume('{')) {
        return Fail(error, "expected entry object");
      }
      BaselineEntry entry;
      while (true) {
        SkipWs();
        if (Consume('}')) {
          break;
        }
        std::string key;
        if (!ParseString(&key)) {
          return Fail(error, "expected entry key");
        }
        SkipWs();
        if (!Consume(':')) {
          return Fail(error, "expected ':'");
        }
        SkipWs();
        if (key == "line") {
          std::string num;
          while (pos_ < s_.size() &&
                 (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                  s_[pos_] == '-')) {
            num += s_[pos_++];
          }
          entry.line = num.empty() ? 0 : std::atoi(num.c_str());
        } else {
          std::string value;
          if (!ParseString(&value)) {
            return Fail(error, "expected string value for '" + key + "'");
          }
          if (key == "id") {
            entry.id = value;
          } else if (key == "rule") {
            entry.rule = value;
          } else if (key == "file") {
            entry.file = value;
          } else if (key == "justification") {
            entry.justification = value;
          }
        }
        SkipWs();
        Consume(',');
      }
      out->entries.push_back(std::move(entry));
      SkipWs();
      Consume(',');
    }
  }

  bool SkipValue() {
    // Only strings and numbers appear outside "entries" in our schema.
    if (pos_ < s_.size() && s_[pos_] == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}') {
      ++pos_;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // Baseline text is ASCII; decode the low byte only.
            if (pos_ + 4 <= s_.size()) {
              c = static_cast<char>(std::stoi(std::string(s_.substr(pos_, 4)), nullptr, 16));
              pos_ += 4;
            }
            break;
          }
          default: c = esc;
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) {
      *error = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseBaseline(std::string_view json, Baseline* baseline, std::string* error) {
  baseline->entries.clear();
  return BaselineParser(json).Parse(baseline, error);
}

std::string SerializeBaseline(const Baseline& baseline) {
  std::vector<BaselineEntry> entries = baseline.entries;
  std::sort(entries.begin(), entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) { return a.id < b.id; });
  std::ostringstream out;
  out << "{\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BaselineEntry& e = entries[i];
    out << (i == 0 ? "" : ",") << "\n    {\"id\": \"" << JsonEscape(e.id)
        << "\", \"rule\": \"" << JsonEscape(e.rule) << "\", \"file\": \""
        << JsonEscape(e.file) << "\", \"line\": " << e.line
        << ", \"justification\": \"" << JsonEscape(e.justification) << "\"}";
  }
  out << (entries.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

Baseline BaselineFromFindings(const ProjectResult& result) {
  Baseline baseline;
  for (const Finding& f : result.findings) {
    baseline.entries.push_back({f.id, f.rule, f.file, f.line, ""});
  }
  return baseline;
}

void ApplyBaseline(const Baseline& baseline, const std::string& baseline_label,
                   ProjectResult* result) {
  std::map<std::string, const BaselineEntry*> by_id;
  for (const BaselineEntry& entry : baseline.entries) {
    by_id[entry.id] = &entry;
  }
  std::set<std::string> matched;
  for (Finding& f : result->findings) {
    auto it = by_id.find(f.id);
    if (it == by_id.end()) {
      continue;
    }
    matched.insert(f.id);
    if (!it->second->justification.empty()) {
      f.baselined = true;
    }
  }
  for (const BaselineEntry& entry : baseline.entries) {
    if (entry.justification.empty()) {
      result->findings.push_back(
          {baseline_label, 0, "baseline-unjustified",
           "baseline entry " + entry.id + " (" + entry.file +
               ") has no justification; every accepted finding must say why it "
               "is sound",
           "baseline-unjustified-" + entry.id, false});
    }
    if (!matched.contains(entry.id)) {
      result->findings.push_back(
          {baseline_label, 0, "baseline-stale",
           "baseline entry " + entry.id + " (" + entry.rule + " in " + entry.file +
               ") matches no current finding; the code changed — delete the entry",
           "baseline-stale-" + entry.id, false});
    }
  }
  SortFindings(&result->findings);
}

// ---- Output ------------------------------------------------------------------

std::string FindingsJson(const ProjectResult& result) {
  std::size_t baselined = 0;
  for (const Finding& f : result.findings) {
    baselined += f.baselined ? 1u : 0u;
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"simlint-v2\",\n"
      << "  \"files_scanned\": " << result.files_scanned << ",\n"
      << "  \"counts\": {\"total\": " << result.findings.size()
      << ", \"new\": " << result.findings.size() - baselined
      << ", \"baselined\": " << baselined << "},\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"id\": \"" << JsonEscape(f.id)
        << "\", \"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line << ", \"baselined\": "
        << (f.baselined ? "true" : "false") << ", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << (result.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string GithubAnnotations(const ProjectResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    if (f.baselined) {
      continue;
    }
    // Annotation messages must be single-line; ours already are.
    out << "::error file=" << f.file << ",line=" << f.line << "::[simlint:" << f.rule
        << "] " << f.message << "\n";
  }
  return out.str();
}

std::string MetricsMarkdown(const ProjectResult& result) {
  std::ostringstream out;
  for (const MetricInventoryRow& row : result.metrics) {
    out << "| `" << row.name << "` | " << row.kind << " | " << row.first_file << " |\n";
  }
  return out.str();
}

}  // namespace ofc::simlint
