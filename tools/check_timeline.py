#!/usr/bin/env python3
"""Structural validator for the observability artifacts ofc-sim writes.

Used by CI (and usable by hand) to prove a run produced well-formed telemetry:

  check_timeline.py --timeline timeline.json [--health health.json]
                    [--flight flight.json] [--min-windows N]
                    [--expect-alerts N] [--expect-counter NAME]

Checks, beyond "it parses as JSON":
  * timeline — windows are contiguous ((prev.end == next.start)), end times
    strictly increase, retained-window count is consistent with
    total_windows/evicted, and every counter cell's delta/rate is non-negative
    with rate == 0 on zero-length windows;
  * health   — the summary carries the slos/alerts/breaker/shed sections, every
    alert names a declared SLO, and resolved alerts resolve after they fire;
  * flight   — events are seq-ordered, timestamps are non-decreasing, and
    total_recorded == evicted + len(events).

Exit status: 0 clean, 1 validation failure, 2 usage error.
"""

import argparse
import json
import sys

_errors = []


def fail(msg):
    _errors.append(msg)


def load(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{what}: cannot load {path}: {e}")
        return None


def check_timeline(doc, min_windows):
    windows = doc.get("windows")
    if not isinstance(windows, list):
        fail("timeline: missing 'windows' array")
        return
    total = doc.get("total_windows", -1)
    evicted = doc.get("evicted", -1)
    if total != evicted + len(windows):
        fail(f"timeline: total_windows={total} != evicted={evicted} + "
             f"retained={len(windows)}")
    if len(windows) < min_windows:
        fail(f"timeline: only {len(windows)} windows, expected >= {min_windows}")
    prev_end = None
    prev_index = None
    for i, w in enumerate(windows):
        for key in ("index", "start_us", "end_us", "counters", "gauges", "series"):
            if key not in w:
                fail(f"timeline: window[{i}] missing '{key}'")
                return
        if w["end_us"] < w["start_us"]:
            fail(f"timeline: window[{i}] ends before it starts")
        if prev_index is not None and w["index"] != prev_index + 1:
            fail(f"timeline: window indices jump {prev_index} -> {w['index']}")
        if prev_end is not None and w["start_us"] != prev_end:
            fail(f"timeline: window[{i}] starts at {w['start_us']}, "
                 f"previous ended at {prev_end} (gap or overlap)")
        prev_end = w["end_us"]
        prev_index = w["index"]
        for cell in w["counters"]:
            if cell.get("delta", 0) < 0 or cell.get("rate_per_s", 0) < 0:
                fail(f"timeline: negative delta/rate in window[{i}] "
                     f"cell {cell.get('name')}")
            if w["end_us"] == w["start_us"] and cell.get("rate_per_s", 0) != 0:
                fail(f"timeline: zero-length window[{i}] reports a nonzero rate")


def check_counter_present(doc, name):
    for w in doc.get("windows", []):
        for cell in w.get("counters", []):
            if cell.get("name") == name:
                return
    fail(f"timeline: counter family '{name}' never appears in any window")


def check_health(doc, expect_alerts):
    for key in ("worst_burn", "alerts_fired", "slos", "alerts", "breaker",
                "shed", "invocations"):
        if key not in doc:
            fail(f"health: missing '{key}'")
            return
    declared = {s.get("name") for s in doc["slos"]}
    if doc["alerts_fired"] != len(doc["alerts"]):
        fail(f"health: alerts_fired={doc['alerts_fired']} but "
             f"{len(doc['alerts'])} alert records")
    for a in doc["alerts"]:
        if a.get("slo") not in declared:
            fail(f"health: alert names undeclared SLO '{a.get('slo')}'")
        resolved = a.get("resolved_at_us", 0)
        if resolved != 0 and resolved < a.get("fired_at_us", 0):
            fail(f"health: alert for '{a.get('slo')}' resolves before it fires")
    if expect_alerts is not None and doc["alerts_fired"] < expect_alerts:
        fail(f"health: alerts_fired={doc['alerts_fired']}, "
             f"expected >= {expect_alerts}")


def check_flight(doc):
    events = doc.get("events")
    if not isinstance(events, list):
        fail("flight: missing 'events' array")
        return
    total = doc.get("total_recorded", -1)
    evicted = doc.get("evicted", -1)
    if total != evicted + len(events):
        fail(f"flight: total_recorded={total} != evicted={evicted} + "
             f"retained={len(events)}")
    prev_seq = None
    prev_time = None
    for i, e in enumerate(events):
        if "seq" not in e or "t_us" not in e or "kind" not in e:
            fail(f"flight: event[{i}] missing seq/t_us/kind")
            return
        if prev_seq is not None and e["seq"] != prev_seq + 1:
            fail(f"flight: seq jumps {prev_seq} -> {e['seq']}")
        if prev_time is not None and e["t_us"] < prev_time:
            fail(f"flight: time goes backwards at seq {e['seq']}")
        prev_seq = e["seq"]
        prev_time = e["t_us"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeline", help="timeline JSON path")
    parser.add_argument("--health", help="health JSON path")
    parser.add_argument("--flight", help="flight-recorder dump path")
    parser.add_argument("--min-windows", type=int, default=1)
    parser.add_argument("--expect-alerts", type=int, default=None,
                        help="require at least N fired alerts in the health doc")
    parser.add_argument("--expect-counter", action="append", default=[],
                        help="counter family that must appear in the timeline")
    args = parser.parse_args()
    if not (args.timeline or args.health or args.flight):
        parser.error("nothing to check: pass --timeline/--health/--flight")

    if args.timeline:
        doc = load(args.timeline, "timeline")
        if doc is not None:
            check_timeline(doc, args.min_windows)
            for name in args.expect_counter:
                check_counter_present(doc, name)
    if args.health:
        doc = load(args.health, "health")
        if doc is not None:
            check_health(doc, args.expect_alerts)
    if args.flight:
        doc = load(args.flight, "flight")
        if doc is not None:
            check_flight(doc)

    if _errors:
        for e in _errors:
            print(f"check_timeline: {e}", file=sys.stderr)
        return 1
    print("check_timeline: all artifacts structurally sound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
