// ofc_sim: command-line experiment runner.
//
// Runs a configurable multi-tenant workload against OWK-Swift, OWK-Redis, or
// OFC and prints per-tenant latency summaries plus OFC's internal counters —
// the quickest way to explore the system without writing code.
//
// The full flag reference lives in kFlagDocs below (the single source of
// truth behind --help and the generated docs/cli.md; see tools/gen_cli_docs.py).
//
// Examples:
//   ofc_sim --mode=ofc --functions=wand_blur,wand_edge --duration-min=10
//   ofc_sim --mode=owk-swift --pipelines=map_reduce --interval-s=30
//   ofc_sim --cache-policy=gdsf                  # non-paper eviction policy
//   ofc_sim --mode=ofc --trace-json=trace.json   # open in ui.perfetto.dev
//   ofc_sim --timeline-json=tl.json --scrape-interval-s=10   # windowed telemetry
//   ofc_sim --slo='warm=lat:ofc.platform.total_ms:p99:250' --health-json=health.json
//   ofc_sim --flight-recorder --dump-on-assert=blackbox.json # post-mortem ring
//   ofc_sim --fault-plan=chaos.json              # replay a declarative fault plan
//   ofc_sim --crash-node-at=1:60:30              # crash node 1 at t=60s for 30s
//   ofc_sim --fault-plan=rot.json --scrub-interval-s=5   # corruption + scrubbing
//   ofc_sim --selfcheck-determinism              # replay twice, diff metrics
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/sim_assert.h"
#include "src/common/stats.h"
#include "src/core/cache_policy.h"
#include "src/core/scrubber.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"
#include "src/sim/periodic.h"

namespace ofc {
namespace {

struct Flags {
  std::string mode = "ofc";
  std::string profile = "normal";
  std::vector<std::string> functions;
  std::vector<std::string> pipelines;
  std::string arrivals = "poisson";
  int duration_min = 10;
  double interval_s = 30.0;
  int workers = 4;
  int worker_gb = 16;
  std::uint64_t seed = 42;
  int pretrain = 1000;
  // Cache eviction/sweep policy spec, "NAME[,function=NAME]..." — validated
  // against core::KnownCachePolicies() at parse time (OFC mode only).
  std::string cache_policy = "lru";
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
  std::uint64_t trace_sample = 1;
  bool log_sim_time = false;
  // Telemetry scrapes: a sim-clock timer samples the registry into windowed
  // timeline snapshots and (when SLOs are declared) evaluates burn rates.
  // simlint: allow(float-sim-time) -- CLI flag in seconds, converted to integral SimDuration before use
  double scrape_interval_s = 10.0;
  std::string timeline_json;
  std::vector<obs::SloSpec> slo_specs;
  std::string health_json;
  // Black-box flight recorder: 0 = off; --flight-recorder arms the default
  // ring, --flight-recorder=N sizes it.
  std::size_t flight_capacity = 0;
  std::string flight_json;     // End-of-run ring dump (independent of asserts).
  std::string dump_on_assert;  // Ring dump target when a SIM_ASSERT fires.
  // Hidden test hook: fires a deliberate SIM_ASSERT breach at S seconds so CI
  // can prove --dump-on-assert produces a dump on an invariant breach.
  // simlint: allow(float-sim-time) -- CLI flag in seconds, converted to integral SimDuration before use
  double inject_breach_at_s = 0.0;
  // Declarative fault schedule (--fault-plan JSON plus --crash-node-at
  // shorthands), replayed by a FaultInjector alongside the workload.
  fault::FaultPlan fault_plan;
  // Background integrity scrubber: 0 = off. Walks cache copies and store
  // objects incrementally, repairing checksum divergence as it is found.
  // simlint: allow(float-sim-time) -- CLI flag in seconds, converted to integral SimDuration before use
  double scrub_interval_s = 0.0;
  // Overload protection: platform admission control (queue depth / deadline /
  // concurrency, 0 = unbounded) and the proxy's cache-path circuit breaker
  // (threshold 0 = disabled).
  std::size_t queue_limit = 0;
  // simlint: allow(float-sim-time) -- CLI flag in seconds, converted to integral SimDuration before use
  double queue_deadline_s = 0.0;
  int max_concurrency = 0;
  int breaker_threshold = 0;
  double breaker_open_s = 5.0;
  int breaker_probes = 3;
  double breaker_slo_ms = 0.0;
  // Run guards: --progress prints a heartbeat line every tenth of the horizon
  // (simulated time, invocations fired/completed, events dispatched) so long
  // scale runs are observably alive; --max-events caps the event loop's
  // dispatch budget so a runaway scenario terminates instead of spinning.
  bool progress = false;
  std::uint64_t max_events = 0;
  // Replays the scenario twice (same seed, perturbed unordered-container hash
  // salt) and diffs the metrics snapshots and event-loop fingerprint; exits
  // nonzero on any divergence.
  bool selfcheck = false;
  // Test hook: leaks the replay index into the workload seed so the selfcheck
  // MUST fail. Exists so CI can prove the selfcheck detects nondeterminism.
  bool selfcheck_perturb = false;
};

// What a run leaves behind for comparison: the full metrics snapshot plus the
// event-loop fingerprint (final simulated time, total events scheduled).
struct RunOutcome {
  std::string metrics_json;
  std::string timeline_json;  // Empty when no telemetry scraping was on.
  std::string health_json;    // Empty when no scraping/SLOs were on.
  std::string flight_json;    // Empty when the flight recorder was off.
  SimTime final_time = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t invocations = 0;
};

// Writes `body` to `path`; returns false (with a message) on failure.
bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

// Reads `path` fully into `*out`; returns false (with a message) on failure.
bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// --crash-node-at=N:S[:D] — crash node N at S seconds, restart after D seconds
// (D omitted or 0: the node stays down).
bool ParseCrashNodeAt(const std::string& value, fault::FaultEvent* out) {
  int node = 0;
  double at_s = 0.0;
  double dur_s = 0.0;
  const int matched =
      std::sscanf(value.c_str(), "%d:%lf:%lf", &node, &at_s, &dur_s);
  if (matched < 2 || node < 0 || at_s < 0.0 || dur_s < 0.0) {
    std::fprintf(stderr, "bad --crash-node-at=%s (want N:S[:D])\n", value.c_str());
    return false;
  }
  out->kind = fault::FaultKind::kNodeCrash;
  out->target = node;
  out->at = static_cast<SimTime>(at_s * 1e6);
  out->duration = static_cast<SimDuration>(dur_s * 1e6);
  return true;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      out.push_back(token);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

// One flag's documentation. The table below is the single source of truth for
// the flag reference: Usage() renders it to stderr and tools/gen_cli_docs.py
// parses it into docs/cli.md (CI runs the generator with --check, so this
// table, the Main() parser, and the committed docs cannot drift apart).
struct FlagDoc {
  const char* group;  // Section heading; consecutive entries share a group.
  const char* spec;   // Flag grammar, e.g. "--mode=ofc|owk-swift|owk-redis".
  const char* help;   // One-line description (docs table cell).
};

// FLAG-TABLE-BEGIN (parsed by tools/gen_cli_docs.py; keep one entry per line)
constexpr FlagDoc kFlagDocs[] = {
    {"Scenario", "--mode=ofc|owk-swift|owk-redis", "System under test: OFC, or the vanilla OpenWhisk baselines against Swift/Redis (default ofc)."},
    {"Scenario", "--profile=normal|naive|advanced", "Tenant memory-booking profile: honest, 2x over-booked, or finely tuned (default normal)."},
    {"Scenario", "--functions=f1,f2,...", "Comma-separated function tenants (default wand_blur,wand_sepia,wand_edge; see `available functions` in --help)."},
    {"Scenario", "--pipelines=p1,...", "Comma-separated pipeline tenants (see `available pipelines` in --help)."},
    {"Scenario", "--arrivals=poisson|periodic|bursty", "Inter-arrival process per tenant (default poisson)."},
    {"Scenario", "--duration-min=N", "Simulated run length in minutes (default 10)."},
    {"Scenario", "--interval-s=N", "Mean inter-arrival interval per tenant in seconds (default 30)."},
    {"Scenario", "--workers=N", "Number of worker nodes (default 4)."},
    {"Scenario", "--worker-gb=N", "Memory per worker in GiB (default 16)."},
    {"Scenario", "--seed=N", "Root RNG seed; same seed + same flags = byte-identical run (default 42)."},
    {"Scenario", "--pretrain=N", "Offline pretraining invocations per function before the run (default 1000)."},
    {"Cache policy", "--cache-policy=NAME[,function=NAME...]", "Cache eviction/sweep policy: lru (paper-faithful default), gdsf, lfu-decay, or cost-aware; optional per-function overrides, e.g. gdsf,wand_blur=lru. OFC mode only."},
    {"Observability", "--metrics-json=PATH", "Write the end-of-run metrics snapshot as JSON."},
    {"Observability", "--metrics-csv=PATH", "Write the end-of-run metrics snapshot as CSV (one row per cell)."},
    {"Observability", "--trace-json=PATH", "Record Chrome trace-event JSON of invocation/control-plane spans (open in ui.perfetto.dev)."},
    {"Observability", "--trace-sample=N", "With --trace-json: record every Nth invocation id (default 1 = all)."},
    {"Observability", "--log-sim-time", "Prefix every log line with the simulated clock (t=<seconds>s)."},
    {"Observability", "--scrape-interval-s=S", "Telemetry scrape period for the timeline/SLO loop (default 10)."},
    {"Observability", "--timeline-json=PATH", "Write windowed counter/gauge/series snapshots scraped on the sim clock."},
    {"Observability", "--slo=SPEC;...|@FILE", "SLO burn-rate specs (name=lat:metric:pN:ms or name=rate:num/den:frac), inline or @file."},
    {"Observability", "--health-json=PATH", "Write the SLO health summary (worst burn, alerts) at end of run."},
    {"Observability", "--flight-recorder[=N]", "Arm the black-box event ring (default capacity 4096; =N sizes it)."},
    {"Observability", "--flight-json=PATH", "Dump the flight-recorder ring to PATH at end of run."},
    {"Observability", "--dump-on-assert=PATH", "Dump the flight-recorder ring to PATH when a SIM_ASSERT fires."},
    {"Fault injection", "--fault-plan=PATH", "Replay a declarative JSON fault schedule alongside the workload."},
    {"Fault injection", "--crash-node-at=N:S[:D]", "Crash node N at S seconds, restart after D seconds (omitted/0 = stays down)."},
    {"Fault injection", "--scrub-interval-s=S", "Arm the background integrity scrubber with the given period (OFC mode only)."},
    {"Overload protection", "--queue-limit=N", "Platform admission queue depth bound (0 = unbounded)."},
    {"Overload protection", "--queue-deadline-s=S", "Shed queued invocations older than S seconds (0 = never)."},
    {"Overload protection", "--max-concurrency=N", "Per-function concurrent invocation cap (0 = unbounded)."},
    {"Overload protection", "--breaker-threshold=N", "Cache-path circuit breaker: open after N consecutive failures (0 = disabled)."},
    {"Overload protection", "--breaker-open-s=S", "Breaker open-state duration before half-open probing (default 5)."},
    {"Overload protection", "--breaker-probes=N", "Successful half-open probes required to close the breaker (default 3)."},
    {"Overload protection", "--breaker-slo-ms=MS", "Treat cache reads slower than MS as breaker failures (0 = latency ignored)."},
    {"Run guards", "--progress", "Print a liveness heartbeat to stderr every tenth of the horizon."},
    {"Run guards", "--max-events=N", "Cap the event loop's dispatch budget; a runaway run truncates instead of spinning."},
    {"Self-checks", "--selfcheck-determinism", "Replay the scenario twice (perturbed hash salt) and diff all artifacts; nonzero exit on divergence."},
    {"Self-checks", "--selfcheck-perturb", "Test hook: leak the replay index into the seed so the selfcheck must fail."},
    {"Self-checks", "--inject-breach-at=S", "Test hook: fire a deliberate SIM_ASSERT at S seconds (proves --dump-on-assert works)."},
};
// FLAG-TABLE-END

int Usage() {
  std::fprintf(stderr, "usage: ofc_sim [flags]\n");
  const char* group = "";
  for (const FlagDoc& doc : kFlagDocs) {
    if (std::strcmp(group, doc.group) != 0) {
      group = doc.group;
      std::fprintf(stderr, "\n%s:\n", group);
    }
    std::fprintf(stderr, "  %s\n      %s\n", doc.spec, doc.help);
  }
  std::fprintf(stderr, "\navailable functions:\n");
  for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  }
  std::fprintf(stderr, "available pipelines:\n");
  for (const workloads::PipelineSpec& spec : workloads::AllPipelines()) {
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  }
  std::fprintf(stderr, "available cache policies:\n");
  for (const std::string& name : core::KnownCachePolicies()) {
    std::fprintf(stderr, "  %s\n", name.c_str());
  }
  return 2;
}

// Runs the scenario described by `flags` once. `run_index` identifies the
// replay for the selfcheck harness; `quiet` suppresses the human-readable
// report. Returns 0 on success and fills `out`.
int RunScenario(const Flags& flags, bool quiet, std::uint64_t run_index, RunOutcome* out) {
  faasload::Mode mode;
  if (flags.mode == "ofc") {
    mode = faasload::Mode::kOfc;
  } else if (flags.mode == "owk-swift") {
    mode = faasload::Mode::kOwkSwift;
  } else if (flags.mode == "owk-redis") {
    mode = faasload::Mode::kOwkRedis;
  } else {
    return Usage();
  }
  faasload::TenantProfile profile;
  if (flags.profile == "normal") {
    profile = faasload::TenantProfile::kNormal;
  } else if (flags.profile == "naive") {
    profile = faasload::TenantProfile::kNaive;
  } else if (flags.profile == "advanced") {
    profile = faasload::TenantProfile::kAdvanced;
  } else {
    return Usage();
  }
  faasload::ArrivalPattern arrivals;
  if (flags.arrivals == "poisson") {
    arrivals = faasload::ArrivalPattern::kExponential;
  } else if (flags.arrivals == "periodic") {
    arrivals = faasload::ArrivalPattern::kPeriodic;
  } else if (flags.arrivals == "bursty") {
    arrivals = faasload::ArrivalPattern::kBursty;
  } else {
    return Usage();
  }

  // The deliberate bug behind --selfcheck-perturb: a replay-dependent seed.
  const std::uint64_t seed = flags.seed + (flags.selfcheck_perturb ? run_index : 0);

  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = flags.workers;
  env_options.platform.worker_memory = GiB(flags.worker_gb);
  env_options.platform.max_queue_depth = flags.queue_limit;
  env_options.platform.queue_deadline =
      static_cast<SimDuration>(flags.queue_deadline_s * 1e6);
  env_options.platform.max_concurrency_per_function = flags.max_concurrency;
  env_options.ofc.proxy.breaker_failure_threshold = flags.breaker_threshold;
  env_options.ofc.proxy.breaker_open_duration =
      static_cast<SimDuration>(flags.breaker_open_s * 1e6);
  env_options.ofc.proxy.breaker_half_open_probes = flags.breaker_probes;
  env_options.ofc.proxy.breaker_latency_slo =
      static_cast<SimDuration>(flags.breaker_slo_ms * 1e3);
  env_options.ofc.cache_policy = flags.cache_policy;
  env_options.seed = seed;
  faasload::Environment env(mode, env_options);
  if (!flags.trace_json.empty()) {
    env.trace().set_enabled(true);
    env.trace().set_sample_period(flags.trace_sample);
  }
  const bool flight_on = flags.flight_capacity > 0 || !flags.dump_on_assert.empty() ||
                         !flags.flight_json.empty();
  if (flight_on) {
    if (flags.flight_capacity > 0) {
      env.flight().set_capacity(flags.flight_capacity);
    }
    env.flight().set_enabled(true);
  }
  if (!flags.dump_on_assert.empty()) {
    // Post-mortem: when any SIM_ASSERT fires, dump the black-box ring before
    // the abort so the causal chain that led up to the breach survives.
    SetSimAssertHook([&env, path = flags.dump_on_assert](const std::string& message) {
      if (env.flight().WriteJson(path, message)) {
        std::fprintf(stderr, "flight recorder dumped to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      }
    });
  }
  if (flags.log_sim_time) {
    // Prefix every log line with the simulated clock, e.g. "t=12.345s".
    SetLogPrefixHook([&env] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "t=%.3fs", ToSeconds(env.loop().now()));
      return std::string(buf);
    });
  }
  faasload::LoadInjector injector(&env, profile, seed + 1);

  for (const std::string& function : flags.functions) {
    if (workloads::FindFunction(function) == nullptr) {
      std::fprintf(stderr, "unknown function: %s\n", function.c_str());
      return Usage();
    }
    faasload::TenantSpec spec;
    spec.name = "t-" + function;
    spec.function = function;
    spec.mean_interval_s = flags.interval_s;
    spec.arrivals = arrivals;
    if (!injector.AddTenant(spec).ok()) {
      return 1;
    }
  }
  for (const std::string& pipeline : flags.pipelines) {
    if (workloads::FindPipeline(pipeline) == nullptr) {
      std::fprintf(stderr, "unknown pipeline: %s\n", pipeline.c_str());
      return Usage();
    }
    faasload::TenantSpec spec;
    spec.name = "t-" + pipeline;
    spec.function = pipeline;
    spec.is_pipeline = true;
    spec.mean_interval_s = flags.interval_s;
    spec.arrivals = arrivals;
    if (!injector.AddTenant(spec).ok()) {
      return 1;
    }
  }

  std::unique_ptr<fault::FaultInjector> faults;
  if (!flags.fault_plan.empty()) {
    fault::FaultInjectorTargets targets;
    targets.platform = &env.platform();
    targets.cluster = env.cluster();  // Null in baseline modes: node faults reject.
    targets.rsds = &env.rsds();
    targets.proxy = env.ofc() != nullptr ? &env.ofc()->proxy() : nullptr;
    faults = std::make_unique<fault::FaultInjector>(
        &env.loop(), targets,
        fault::FaultInjectorOptions{&env.metrics(), &env.trace()});
    if (Status scheduled = faults->Schedule(flags.fault_plan); !scheduled.ok()) {
      std::fprintf(stderr, "fault plan: %s\n", scheduled.message().c_str());
      return 1;
    }
  }

  // Background integrity scrubber: needs the cache cluster, so OFC mode only.
  std::unique_ptr<core::Scrubber> scrubber;
  if (flags.scrub_interval_s > 0.0) {
    if (env.cluster() == nullptr) {
      std::fprintf(stderr, "--scrub-interval-s needs a cache cluster (--mode=ofc)\n");
      return 1;
    }
    core::ScrubberOptions scrub_options;
    scrub_options.interval = static_cast<SimDuration>(flags.scrub_interval_s * 1e6);
    scrub_options.metrics = &env.metrics();
    scrubber = std::make_unique<core::Scrubber>(&env.loop(), env.cluster(), &env.rsds(),
                                                scrub_options);
    scrubber->Start();
  }

  // Telemetry scrape loop: SLO evaluation folds the interval first so the
  // ofc.slo.* cells land in the same timeline window the scrape captures.
  const bool scraping = !flags.timeline_json.empty() || !flags.health_json.empty() ||
                        !flags.slo_specs.empty();
  std::unique_ptr<obs::TimelineRecorder> timeline;
  std::unique_ptr<obs::SloMonitor> slo;
  std::unique_ptr<sim::PeriodicTask> scraper;
  if (scraping) {
    slo = std::make_unique<obs::SloMonitor>(
        &env.metrics(), flags.trace_json.empty() ? nullptr : &env.trace(), flags.slo_specs);
    timeline = std::make_unique<obs::TimelineRecorder>(&env.metrics());
    scraper = std::make_unique<sim::PeriodicTask>(
        &env.loop(), static_cast<SimDuration>(flags.scrape_interval_s * 1e6),
        [&slo, &timeline](SimTime now) {
          slo->Evaluate(now);
          timeline->Scrape(now);
        });
    scraper->Start();
  }

  if (flags.inject_breach_at_s > 0.0) {
    env.loop().ScheduleAt(static_cast<SimTime>(flags.inject_breach_at_s * 1e6), [&env] {
      SIM_ASSERT(false) << "; injected invariant breach (--inject-breach-at) at t="
                        << ToSeconds(env.loop().now()) << "s";
    });
  }

  injector.PretrainModels(flags.pretrain);
  if (!quiet) {
    std::printf("mode=%s profile=%s workers=%dx%dGiB duration=%dmin seed=%llu\n\n",
                faasload::ModeName(mode).c_str(), faasload::TenantProfileName(profile).c_str(),
                flags.workers, flags.worker_gb, flags.duration_min,
                static_cast<unsigned long long>(seed));
    if (!flags.fault_plan.empty()) {
      std::printf("fault plan: %zu events: %s\n\n", flags.fault_plan.size(),
                  fault::FaultPlanToJson(flags.fault_plan).c_str());
    }
  }
  // Progress heartbeat: a sim-clock timer reporting liveness every tenth of
  // the horizon. Goes to stderr so it never pollutes piped table output.
  std::unique_ptr<sim::PeriodicTask> progress;
  if (flags.progress && !quiet) {
    const SimDuration horizon = Minutes(flags.duration_min);
    const SimDuration step = horizon >= 10 ? horizon / 10 : SimDuration{1};
    progress = std::make_unique<sim::PeriodicTask>(
        &env.loop(), step, [&env, &injector](SimTime now) {
          std::fprintf(stderr,
                       "progress: t=%.1fs fired=%llu completed=%llu events=%llu\n",
                       ToSeconds(now),
                       static_cast<unsigned long long>(injector.invocations_fired()),
                       static_cast<unsigned long long>(injector.invocations_completed()),
                       static_cast<unsigned long long>(env.loop().total_dispatched()));
        });
    progress->Start();
  }
  if (flags.max_events > 0) {
    env.loop().set_dispatch_budget(flags.max_events);
  }
  injector.Run(Minutes(flags.duration_min));
  if (progress != nullptr) {
    progress->Stop();
  }
  const bool budget_hit = env.loop().dispatch_budget_exhausted();
  if (budget_hit) {
    std::fprintf(stderr,
                 "note: --max-events budget (%llu) exhausted at t=%.1fs; "
                 "run truncated (%llu invocations still in flight)\n",
                 static_cast<unsigned long long>(flags.max_events),
                 ToSeconds(env.loop().now()),
                 static_cast<unsigned long long>(injector.invocations_fired() -
                                                 injector.invocations_completed()));
  }
  if (scrubber != nullptr) {
    scrubber->Stop();
  }
  if (scraper != nullptr) {
    scraper->Stop();
    // Final partial window: capture the tail between the last tick and drain.
    slo->Evaluate(env.loop().now());
    timeline->Scrape(env.loop().now());
  }

  if (!quiet) {
    std::printf("%-24s %-7s %-12s %-12s %-12s %-9s\n", "tenant", "runs", "median (ms)",
                "p95 (ms)", "total (s)", "failures");
    for (const faasload::TenantResult& tenant : injector.results()) {
      Samples latencies;
      for (const auto& record : tenant.invocations) {
        latencies.Add(ToMillis(record.total));
      }
      for (const auto& record : tenant.pipelines) {
        latencies.Add(ToMillis(record.total));
      }
      std::printf("%-24s %-7zu %-12.1f %-12.1f %-12.1f %-9zu\n", tenant.name.c_str(),
                  tenant.invocations.size() + tenant.pipelines.size(), latencies.Median(),
                  latencies.Percentile(0.95),
                  ToSeconds(tenant.TotalExecutionTime()), tenant.FailureCount());
    }

    if (env.ofc() != nullptr) {
      const auto& proxy = env.ofc()->proxy().stats();
      const auto& cache = env.ofc()->cache_agent().stats();
      const auto& predictions = env.ofc()->prediction_stats();
      std::printf("\nOFC internals:\n");
      std::printf("  hit ratio            %.1f %%\n", 100.0 * proxy.HitRatio());
      std::printf("  admissions           %llu (failed %llu)\n",
                  static_cast<unsigned long long>(proxy.admissions),
                  static_cast<unsigned long long>(proxy.admission_failures));
      std::printf("  persistor runs       %llu\n",
                  static_cast<unsigned long long>(proxy.persistor_runs));
      std::printf("  scale up/down        %llu / %llu\n",
                  static_cast<unsigned long long>(cache.scale_ups),
                  static_cast<unsigned long long>(cache.scale_downs_plain +
                                                  cache.scale_downs_migration +
                                                  cache.scale_downs_eviction));
      std::printf("  predictions          %llu model, %llu fallback, %llu bad\n",
                  static_cast<unsigned long long>(predictions.model_predictions),
                  static_cast<unsigned long long>(predictions.booked_fallbacks),
                  static_cast<unsigned long long>(predictions.bad_predictions));
      std::printf("  cache used/capacity  %s / %s\n",
                  FormatBytes(env.cluster()->TotalUsed()).c_str(),
                  FormatBytes(env.cluster()->TotalCapacity()).c_str());
      if (flags.breaker_threshold > 0) {
        std::printf("  breaker              %llu opens, %llu closes, "
                    "%llu bypassed reads, %llu bypassed writes\n",
                    static_cast<unsigned long long>(proxy.breaker_opens),
                    static_cast<unsigned long long>(proxy.breaker_closes),
                    static_cast<unsigned long long>(proxy.breaker_bypassed_reads),
                    static_cast<unsigned long long>(proxy.breaker_bypassed_writes));
      }
    }
    const auto& platform = env.platform().stats();
    std::printf("\nplatform: %llu invocations, %llu cold starts, %llu OOM kills, "
                "%llu rescues, %llu failures, %llu shed\n",
                static_cast<unsigned long long>(platform.invocations),
                static_cast<unsigned long long>(platform.cold_starts),
                static_cast<unsigned long long>(platform.oom_kills),
                static_cast<unsigned long long>(platform.oom_rescues),
                static_cast<unsigned long long>(platform.failed_invocations),
                static_cast<unsigned long long>(platform.shed_requests));
  }

  if (!quiet && slo != nullptr && !slo->specs().empty()) {
    std::printf("\nSLOs: worst burn %.2f, %llu alert(s) fired\n", slo->worst_burn(),
                static_cast<unsigned long long>(slo->alerts_fired()));
    for (const obs::SloAlert& alert : slo->alerts()) {
      if (alert.resolved_at == 0) {
        std::printf("  %s fired at t=%.1fs (fast %.1f, slow %.1f) — still firing\n",
                    alert.slo.c_str(), ToSeconds(alert.fired_at), alert.fast_burn,
                    alert.slow_burn);
      } else {
        std::printf("  %s fired at t=%.1fs, cleared at t=%.1fs (fast %.1f, slow %.1f)\n",
                    alert.slo.c_str(), ToSeconds(alert.fired_at),
                    ToSeconds(alert.resolved_at), alert.fast_burn, alert.slow_burn);
      }
    }
  }

  out->metrics_json = env.metrics().SnapshotJson(env.loop().now());
  if (timeline != nullptr) {
    out->timeline_json = timeline->ToJson();
  }
  if (slo != nullptr) {
    out->health_json = slo->HealthJson(env.loop().now());
  }
  if (flight_on) {
    out->flight_json = env.flight().ToJson("end_of_run");
  }
  out->final_time = env.loop().now();
  out->events_scheduled = env.loop().total_scheduled();
  out->invocations = env.platform().stats().invocations;

  bool ok = true;
  if (!flags.metrics_json.empty()) {
    ok = WriteFile(flags.metrics_json, out->metrics_json) && ok;
  }
  if (!flags.metrics_csv.empty()) {
    ok = WriteFile(flags.metrics_csv, env.metrics().SnapshotCsv(env.loop().now())) && ok;
  }
  if (!flags.timeline_json.empty()) {
    ok = WriteFile(flags.timeline_json, out->timeline_json) && ok;
  }
  if (!flags.health_json.empty()) {
    ok = WriteFile(flags.health_json, out->health_json) && ok;
  }
  if (!flags.flight_json.empty()) {
    ok = WriteFile(flags.flight_json, out->flight_json) && ok;
  }
  if (!flags.trace_json.empty()) {
    if (!env.trace().WriteJson(flags.trace_json)) {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_json.c_str());
      ok = false;
    } else if (!quiet) {
      std::printf("\ntrace: %zu events (%zu dropped) -> %s\n", env.trace().num_events(),
                  env.trace().num_dropped(), flags.trace_json.c_str());
    }
  }
  ClearSimAssertHook();  // The hook captures `env`, which dies with this frame.
  ClearLogPrefixHook();  // Likewise.
  return ok ? 0 : 1;
}

// Runs the scenario described by `flags` twice with the same seed and diffs
// everything observable. The second replay additionally perturbs the salted
// hash used by the simulator's unordered containers, so any bucket-order
// dependence that leaks into metrics shows up as a diff. `label` names the
// pair in the report. Exit: 0 identical, 1 divergence.
int SelfcheckPair(const Flags& flags, const char* label) {
  constexpr std::uint64_t kPerturbedSalt = 0x9e3779b97f4a7c15ull;
  RunOutcome first;
  RunOutcome second;

  SetHashSalt(0);
  int rc = RunScenario(flags, /*quiet=*/true, /*run_index=*/0, &first);
  if (rc != 0) {
    return rc;
  }
  SetHashSalt(kPerturbedSalt);
  rc = RunScenario(flags, /*quiet=*/true, /*run_index=*/1, &second);
  SetHashSalt(0);
  if (rc != 0) {
    return rc;
  }

  bool identical = true;
  if (first.final_time != second.final_time) {
    std::fprintf(stderr, "selfcheck[%s]: final sim time diverged: %lld vs %lld us\n",
                 label, static_cast<long long>(first.final_time),
                 static_cast<long long>(second.final_time));
    identical = false;
  }
  if (first.events_scheduled != second.events_scheduled) {
    std::fprintf(stderr, "selfcheck[%s]: event count diverged: %llu vs %llu\n",
                 label, static_cast<unsigned long long>(first.events_scheduled),
                 static_cast<unsigned long long>(second.events_scheduled));
    identical = false;
  }
  if (first.invocations != second.invocations) {
    std::fprintf(stderr, "selfcheck[%s]: invocation count diverged: %llu vs %llu\n",
                 label, static_cast<unsigned long long>(first.invocations),
                 static_cast<unsigned long long>(second.invocations));
    identical = false;
  }
  // Every artifact a replay can leave behind must be byte-identical: the
  // end-of-run metrics snapshot plus (when enabled) the windowed timeline, the
  // SLO health summary, and the flight-recorder ring.
  const struct {
    const char* what;
    const std::string& a;
    const std::string& b;
  } artifacts[] = {
      {"metrics JSON", first.metrics_json, second.metrics_json},
      {"timeline JSON", first.timeline_json, second.timeline_json},
      {"health JSON", first.health_json, second.health_json},
      {"flight JSON", first.flight_json, second.flight_json},
  };
  for (const auto& artifact : artifacts) {
    if (artifact.a == artifact.b) {
      continue;
    }
    // Point at the first differing line to make the divergence debuggable.
    std::size_t pos = 0;
    int line = 1;
    while (pos < artifact.a.size() && pos < artifact.b.size() &&
           artifact.a[pos] == artifact.b[pos]) {
      if (artifact.a[pos] == '\n') {
        ++line;
      }
      ++pos;
    }
    std::fprintf(stderr, "selfcheck[%s]: %s diverged at line %d (byte %zu)\n", label,
                 artifact.what, line, pos);
    identical = false;
  }

  if (!identical) {
    std::fprintf(stderr, "selfcheck-determinism[%s]: FAIL — replays diverged\n", label);
    return 1;
  }
  std::printf("selfcheck-determinism[%s]: OK — %llu events, %llu invocations, "
              "metrics identical across replays (hash salt perturbed)\n",
              label, static_cast<unsigned long long>(first.events_scheduled),
              static_cast<unsigned long long>(first.invocations));
  return 0;
}

// The selfcheck runs the configured scenario as one replay pair and — when the
// mode can host faults and the user didn't supply a plan — a second pair with
// a built-in chaos schedule, so the degradation and recovery paths are held to
// the same byte-identical-replay bar as the happy path.
int RunSelfcheck(const Flags& flags) {
  int rc = SelfcheckPair(flags, "base");
  if (rc != 0) {
    return rc;
  }
  if (flags.mode != "ofc" || !flags.fault_plan.empty()) {
    return 0;
  }
  Flags chaos = flags;
  chaos.fault_plan.events = {
      {Seconds(40), fault::FaultKind::kStoreBrownout, -1, Seconds(30), 4.0},
      {Seconds(60), fault::FaultKind::kNodeCrash,
       flags.workers > 1 ? 1 : 0, Seconds(20), 2.0},
      {Seconds(75), fault::FaultKind::kWorkerCrash, 0, Seconds(10), 2.0},
      {Seconds(90), fault::FaultKind::kPersistorDrop, -1, Seconds(15), 2.0},
  };
  rc = SelfcheckPair(chaos, "chaos");
  if (rc != 0) {
    return rc;
  }
  // Third pair: overload — bursty arrivals against bounded admission with the
  // breaker armed, the store browned out and the cache path degraded, so load
  // shedding and breaker transitions are also held to byte-identical replays.
  Flags overload = flags;
  overload.arrivals = "bursty";
  overload.interval_s = std::min(flags.interval_s, 5.0);
  overload.queue_limit = 8;
  overload.queue_deadline_s = 2.0;
  overload.breaker_threshold = 3;
  overload.breaker_open_s = 10.0;
  overload.breaker_probes = 2;
  overload.fault_plan.events = {
      {Seconds(30), fault::FaultKind::kStoreBrownout, -1, Seconds(60), 4.0},
      {Seconds(45), fault::FaultKind::kCacheDegraded, -1, Seconds(40), 2.0},
  };
  rc = SelfcheckPair(overload, "overload");
  if (rc != 0) {
    return rc;
  }
  // Fourth pair: corruption — bit flips across the cache and the durable store
  // with the background scrubber on, so detection, self-healing reads, and
  // scrub repairs are also held to byte-identical replays.
  Flags corruption = flags;
  corruption.scrub_interval_s = 5.0;
  corruption.fault_plan.events = {
      {Seconds(30), fault::FaultKind::kCorruptSegment, 0, 0, 3.0},
      {Seconds(50), fault::FaultKind::kCorruptReplica,
       flags.workers > 1 ? 1 : 0, 0, 3.0},
      {Seconds(70), fault::FaultKind::kStoreRot, -1, 0, 4.0},
  };
  return SelfcheckPair(corruption, "corruption");
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--mode", &flags.mode)) {
    } else if (ParseFlag(argv[i], "--profile", &flags.profile)) {
    } else if (ParseFlag(argv[i], "--functions", &value)) {
      flags.functions = SplitCsv(value);
    } else if (ParseFlag(argv[i], "--pipelines", &value)) {
      flags.pipelines = SplitCsv(value);
    } else if (ParseFlag(argv[i], "--arrivals", &flags.arrivals)) {
    } else if (ParseFlag(argv[i], "--duration-min", &value)) {
      flags.duration_min = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--interval-s", &value)) {
      flags.interval_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      flags.workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--worker-gb", &value)) {
      flags.worker_gb = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--pretrain", &value)) {
      flags.pretrain = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--cache-policy", &flags.cache_policy)) {
      const auto spec = core::ParseCachePolicySpec(flags.cache_policy);
      if (!spec.ok()) {
        std::fprintf(stderr, "--cache-policy: %s\n", spec.status().message().c_str());
        return Usage();
      }
    } else if (ParseFlag(argv[i], "--metrics-json", &flags.metrics_json)) {
    } else if (ParseFlag(argv[i], "--metrics-csv", &flags.metrics_csv)) {
    } else if (ParseFlag(argv[i], "--trace-json", &flags.trace_json)) {
    } else if (ParseFlag(argv[i], "--trace-sample", &value)) {
      flags.trace_sample = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--log-sim-time") == 0) {
      flags.log_sim_time = true;
    } else if (ParseFlag(argv[i], "--scrape-interval-s", &value)) {
      flags.scrape_interval_s = std::atof(value.c_str());
      if (flags.scrape_interval_s <= 0.0) {
        std::fprintf(stderr, "--scrape-interval-s must be > 0\n");
        return 1;
      }
    } else if (ParseFlag(argv[i], "--timeline-json", &flags.timeline_json)) {
    } else if (ParseFlag(argv[i], "--slo", &value)) {
      std::string text = value;
      if (!text.empty() && text[0] == '@') {
        text.clear();
        if (!ReadFile(value.substr(1), &text)) {
          return 1;
        }
      }
      std::string error;
      if (!obs::ParseSloSpecs(text, &flags.slo_specs, &error)) {
        std::fprintf(stderr, "--slo: %s\n", error.c_str());
        return 1;
      }
    } else if (ParseFlag(argv[i], "--health-json", &flags.health_json)) {
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0) {
      flags.flight_capacity = 4096;
    } else if (ParseFlag(argv[i], "--flight-recorder", &value)) {
      flags.flight_capacity = std::strtoull(value.c_str(), nullptr, 10);
      if (flags.flight_capacity == 0) {
        std::fprintf(stderr, "--flight-recorder=N needs N > 0\n");
        return 1;
      }
    } else if (ParseFlag(argv[i], "--flight-json", &flags.flight_json)) {
    } else if (ParseFlag(argv[i], "--dump-on-assert", &flags.dump_on_assert)) {
    } else if (ParseFlag(argv[i], "--inject-breach-at", &value)) {
      flags.inject_breach_at_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--fault-plan", &value)) {
      std::string body;
      if (!ReadFile(value, &body)) {
        return 1;
      }
      const auto plan = fault::ParseFaultPlanJson(body);
      if (!plan.ok()) {
        std::fprintf(stderr, "--fault-plan=%s: %s\n", value.c_str(),
                     plan.status().message().c_str());
        return 1;
      }
      for (const fault::FaultEvent& event : plan->events) {
        flags.fault_plan.events.push_back(event);
      }
    } else if (ParseFlag(argv[i], "--crash-node-at", &value)) {
      fault::FaultEvent event;
      if (!ParseCrashNodeAt(value, &event)) {
        return 1;
      }
      flags.fault_plan.events.push_back(event);
    } else if (ParseFlag(argv[i], "--scrub-interval-s", &value)) {
      flags.scrub_interval_s = std::atof(value.c_str());
      if (flags.scrub_interval_s <= 0.0) {
        std::fprintf(stderr, "--scrub-interval-s must be > 0\n");
        return 1;
      }
    } else if (ParseFlag(argv[i], "--queue-limit", &value)) {
      flags.queue_limit = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--queue-deadline-s", &value)) {
      flags.queue_deadline_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--max-concurrency", &value)) {
      flags.max_concurrency = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--breaker-threshold", &value)) {
      flags.breaker_threshold = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--breaker-open-s", &value)) {
      flags.breaker_open_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--breaker-probes", &value)) {
      flags.breaker_probes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--breaker-slo-ms", &value)) {
      flags.breaker_slo_ms = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      flags.progress = true;
    } else if (ParseFlag(argv[i], "--max-events", &value)) {
      flags.max_events = std::strtoull(value.c_str(), nullptr, 10);
      if (flags.max_events == 0) {
        std::fprintf(stderr, "--max-events=N needs N > 0\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--selfcheck-determinism") == 0) {
      flags.selfcheck = true;
    } else if (std::strcmp(argv[i], "--selfcheck-perturb") == 0) {
      flags.selfcheck = true;
      flags.selfcheck_perturb = true;
    } else {
      return Usage();
    }
  }
  if (flags.functions.empty() && flags.pipelines.empty()) {
    flags.functions = {"wand_blur", "wand_sepia", "wand_edge"};
  }
  flags.fault_plan.Sort();

  if (flags.selfcheck) {
    return RunSelfcheck(flags);
  }
  RunOutcome outcome;
  return RunScenario(flags, /*quiet=*/false, /*run_index=*/0, &outcome);
}

}  // namespace ofc

int main(int argc, char** argv) { return ofc::Main(argc, argv); }
